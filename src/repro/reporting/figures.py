"""Figure-series builders: from profile databases to the paper's charts.

Each function computes the data series behind one family of evaluation
figures; the benchmark harness prints and asserts on these series.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.metrics import (
    induced_split,
    induced_split_by_routine,
    input_volume_by_routine,
    richness_by_routine,
    tail_curve,
)
from ..core.profile_data import ProfileDatabase

__all__ = [
    "worst_case_series",
    "richness_curve",
    "volume_curve",
    "induced_breakdown",
    "thread_input_curve",
    "external_input_curve",
]


def worst_case_series(
    db: ProfileDatabase, routine: str
) -> List[Tuple[int, int]]:
    """Worst-case cost plot of ``routine`` over all threads (Figs. 4–6)."""
    profile = db.merged().get(routine)
    if profile is None:
        return []
    return profile.worst_case_points()


def richness_curve(
    rms_db: ProfileDatabase, trms_db: ProfileDatabase
) -> List[Tuple[float, float]]:
    """Figure 15: tail curve of per-routine profile richness."""
    richness = richness_by_routine(rms_db, trms_db)
    return tail_curve(list(richness.values()))


def volume_curve(
    rms_db: ProfileDatabase, trms_db: ProfileDatabase
) -> List[Tuple[float, float]]:
    """Figure 16: tail curve of per-routine input volume."""
    volumes = input_volume_by_routine(rms_db, trms_db)
    return tail_curve(list(volumes.values()))


def induced_breakdown(
    databases: Dict[str, ProfileDatabase]
) -> List[Tuple[str, float, float]]:
    """Figure 17: per benchmark ``(name, thread %, external %)``, sorted
    by decreasing thread-induced share as the paper plots it."""
    rows = []
    for name, db in databases.items():
        thread_pct, external_pct = induced_split(db)
        rows.append((name, thread_pct, external_pct))
    rows.sort(key=lambda row: -row[1])
    return rows


def thread_input_curve(trms_db: ProfileDatabase) -> List[Tuple[float, float]]:
    """Figure 18: tail curve of per-routine thread-induced input %."""
    split = induced_split_by_routine(trms_db)
    return tail_curve([thread_pct for thread_pct, _ in split.values()])


def external_input_curve(trms_db: ProfileDatabase) -> List[Tuple[float, float]]:
    """Figure 19: tail curve of per-routine external input %."""
    split = induced_split_by_routine(trms_db)
    return tail_curve([external_pct for _, external_pct in split.values()])
