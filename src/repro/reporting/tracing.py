"""Cross-process trace assembly and rendering (``repro trace``).

The client and the server of one service request write spans into
*different* telemetry logs on *different* clocks-of-origin (each log's
``meta.epoch``).  This module joins them back together:

* :func:`load_trace_spans` reads any number of ``telemetry.jsonl``
  logs, keeps the spans that carry a trace identity (``trace`` /
  ``uid`` / ``parent_uid``, written under an active trace context) and
  rebases every start offset onto the shared wall clock via each log's
  epoch — the one clock both processes agree on;
* :func:`assemble_traces` groups spans by trace id and links them into
  parent/child trees on ``uid``/``parent_uid`` (a span whose parent is
  in neither log becomes a root — partial traces render, they just
  show more than one root);
* :func:`render_trace_waterfall` draws one trace as an ASCII waterfall
  (indent = tree depth, bar = position on the shared time axis,
  ``@source`` = which log the span came from);
* :func:`render_traces_html` renders selected traces as one
  self-contained HTML page of SVG timelines
  (:func:`repro.reporting.html.svg_timeline` — the flame-chart
  renderer ``repro stats --html`` already uses);
* :func:`slowest` picks the N longest traces — the ``--slowest N``
  triage mode: "show me the worst uploads of this run".

Nothing here needs the server: two log files (or one — a server-only
trace still renders) are the entire input.
"""

from __future__ import annotations

import os
from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

from ..telemetry.jsonl import TelemetryRun
from .html import PAGE_STYLE, svg_timeline

__all__ = [
    "TraceSpan",
    "Trace",
    "load_trace_spans",
    "assemble_traces",
    "slowest",
    "render_trace_waterfall",
    "render_traces_html",
]


class TraceSpan:
    """One traced span rebased onto the shared wall clock."""

    __slots__ = ("name", "trace_id", "uid", "parent_uid", "start", "wall",
                 "ok", "source", "attrs", "children")

    def __init__(self, record: Dict, epoch: float, source: str):
        self.name = str(record.get("name", "?"))
        self.trace_id = str(record["trace"])
        self.uid = str(record["uid"])
        parent = record.get("parent_uid")
        self.parent_uid: Optional[str] = None if parent is None else str(parent)
        self.start = epoch + float(record.get("start", 0.0))
        self.wall = float(record.get("wall", 0.0))
        self.ok = bool(record.get("ok", True))
        self.source = source
        self.attrs: Dict = record.get("attrs") or {}
        self.children: List["TraceSpan"] = []

    @property
    def end(self) -> float:
        return self.start + self.wall


class Trace:
    """All spans of one trace id, linked into parent/child trees."""

    def __init__(self, trace_id: str, spans: List[TraceSpan]):
        self.trace_id = trace_id
        self.spans = sorted(spans, key=lambda span: (span.start, span.uid))
        by_uid = {span.uid: span for span in self.spans}
        self.roots: List[TraceSpan] = []
        for span in self.spans:
            parent = (by_uid.get(span.parent_uid)
                      if span.parent_uid is not None else None)
            if parent is None or parent is span:
                self.roots.append(span)
            else:
                parent.children.append(span)

    @property
    def start(self) -> float:
        return self.spans[0].start if self.spans else 0.0

    @property
    def end(self) -> float:
        return max((span.end for span in self.spans), default=0.0)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def sources(self) -> List[str]:
        return sorted({span.source for span in self.spans})

    def is_single_tree(self) -> bool:
        """True when every span hangs off one root — a complete join."""
        return len(self.roots) == 1 and bool(self.spans)

    def ordered(self) -> List[Tuple[TraceSpan, int]]:
        """Depth-first ``(span, depth)`` walk over all roots."""
        out: List[Tuple[TraceSpan, int]] = []

        def walk(span: TraceSpan, depth: int) -> None:
            out.append((span, depth))
            for child in sorted(span.children,
                                key=lambda item: (item.start, item.uid)):
                walk(child, depth + 1)

        for root in sorted(self.roots, key=lambda item: (item.start, item.uid)):
            walk(root, 0)
        return out


def _source_label(path: str, seen: Dict[str, str]) -> str:
    """A short, unique label for one log path (directory or file stem)."""
    base = os.path.basename(os.path.dirname(os.path.abspath(path))) \
        if os.path.basename(path) == "telemetry.jsonl" \
        else os.path.splitext(os.path.basename(path))[0]
    label = base or path
    suffix = 1
    while label in seen and seen[label] != path:
        suffix += 1
        label = f"{base}#{suffix}"
    seen[label] = path
    return label


def load_trace_spans(paths: Sequence[str]) -> List[TraceSpan]:
    """Every traced span of every log, on the shared wall clock."""
    spans: List[TraceSpan] = []
    seen: Dict[str, str] = {}
    for path in paths:
        run = TelemetryRun.load(path)
        epoch = float(run.meta.get("epoch", 0.0))
        source = _source_label(run.path or path, seen)
        for record in run.spans:
            if record.get("trace") and record.get("uid"):
                spans.append(TraceSpan(record, epoch, source))
    return spans


def assemble_traces(spans: Sequence[TraceSpan]) -> Dict[str, Trace]:
    """Spans grouped and linked per trace id."""
    grouped: Dict[str, List[TraceSpan]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    return {trace_id: Trace(trace_id, members)
            for trace_id, members in grouped.items()}


def slowest(traces: Dict[str, Trace], count: int) -> List[Trace]:
    """The ``count`` longest traces, longest first."""
    ordered = sorted(traces.values(),
                     key=lambda trace: (-trace.duration, trace.trace_id))
    return ordered[: max(0, count)]


def render_trace_waterfall(trace: Trace, width: int = 40) -> str:
    """One trace as an ASCII waterfall (shared time axis, tree indent)."""
    t0 = trace.start
    span_total = trace.duration or 1e-9
    shape = "tree" if trace.is_single_tree() else \
        f"{len(trace.roots)} roots (incomplete join)"
    lines = [
        f"trace {trace.trace_id}  "
        f"{span_total * 1000:.2f}ms  {len(trace.spans)} span(s)  "
        f"logs: {', '.join(trace.sources)}  [{shape}]"
    ]
    entries = trace.ordered()
    label_width = max((len("  " * depth + span.name)
                       for span, depth in entries), default=0)
    for span, depth in entries:
        label = "  " * depth + span.name
        left = int(round((span.start - t0) / span_total * (width - 1)))
        filled = max(1, int(round(span.wall / span_total * width)))
        filled = min(filled, width - left)
        bar = " " * left + "#" * filled
        status = "" if span.ok else "  ERROR"
        lines.append(
            f"  {label:<{label_width}}  |{bar:<{width}}| "
            f"{span.wall * 1000:8.2f}ms  @{span.source}{status}")
    return "\n".join(lines) + "\n"


def _trace_intervals(trace: Trace) -> List[Tuple[str, float, float, int]]:
    t0 = trace.start
    return [(f"{span.name} @{span.source}", span.start - t0, span.wall, depth)
            for span, depth in trace.ordered()]


def render_traces_html(traces: Sequence[Trace],
                       title: str = "request traces") -> str:
    """Selected traces as one self-contained HTML page of timelines."""
    sections = []
    for trace in traces:
        meta = (f"{trace.duration * 1000:.2f}ms &middot; "
                f"{len(trace.spans)} spans &middot; "
                f"logs: {escape(', '.join(trace.sources))}")
        sections.append(
            f"<h2>trace <code>{escape(trace.trace_id)}</code></h2>"
            f'<p class="meta">{meta}</p>'
            f"{svg_timeline(_trace_intervals(trace))}")
    body = "".join(sections) or "<p>(no traces found)</p>"
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{escape(title)}</title>
<style>{PAGE_STYLE}</style></head><body>
<h1>{escape(title)}</h1>
{body}
</body></html>
"""
