"""Self-contained HTML reports with inline SVG cost plots.

``aprof`` ships its profiles to a GUI; this reproduction renders a
single HTML file instead — no external assets, no JavaScript — with:

* the session summary (threads, routines, induced-input split);
* the per-routine table (calls, plot points, input, worst cost,
  induced share);
* an SVG worst-case cost plot for each of the top routines by cost;
* the asymptotic bottleneck ranking.

Everything text-based stays escaping-safe via :func:`html.escape`.
"""

from __future__ import annotations

from html import escape
from typing import List, Sequence, Tuple

from ..core.metrics import induced_split
from ..core.profile_data import ProfileDatabase, RoutineProfile
from .bottlenecks import rank_bottlenecks
from .report import routine_summary

__all__ = ["render_html_report", "svg_scatter", "svg_timeline", "PAGE_STYLE"]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #bbb; padding: 0.3em 0.7em; text-align: right; }
th { background: #eee; } td:first-child, th:first-child { text-align: left; }
.plots { display: flex; flex-wrap: wrap; gap: 1.2em; }
figure { margin: 0; } figcaption { font-size: 0.85em; text-align: center; }
.meta { color: #555; }
"""

#: shared document style, reused by the telemetry dashboard
PAGE_STYLE = _STYLE

#: timeline lane colours, cycled by nesting depth
_LANE_COLORS = ("#2266aa", "#44aa77", "#cc8833", "#aa4466", "#7755bb")


def svg_timeline(
    intervals: Sequence[Tuple[str, float, float, int]],
    width: int = 840,
    row_height: int = 18,
) -> str:
    """Render ``(label, start, duration, depth)`` intervals as a Gantt SVG.

    One row per interval, in the given order; ``depth`` indents the bar
    and picks its colour, so nested telemetry spans read as a flame
    chart lying on its side.  Times are seconds on a shared axis.
    """
    if not intervals:
        return '<svg width="10" height="10"></svg>'
    pad_left, pad_right, pad_top = 180, 70, 4
    span_width = width - pad_left - pad_right
    t_min = min(start for _, start, _, _ in intervals)
    t_max = max(start + max(duration, 0.0) for _, start, duration, _ in intervals)
    t_span = (t_max - t_min) or 1e-9
    height = pad_top * 2 + row_height * len(intervals)

    parts = []
    for row, (label, start, duration, depth) in enumerate(intervals):
        x = pad_left + (start - t_min) / t_span * span_width
        bar = max((duration / t_span) * span_width, 1.0)
        y = pad_top + row * row_height
        color = _LANE_COLORS[min(depth, len(_LANE_COLORS) - 1)]
        indent = "&#160;" * (2 * depth)
        parts.append(
            f'<text x="4" y="{y + row_height - 6}" font-size="11">'
            f'{indent}{escape(label)}</text>'
            f'<rect x="{x:.1f}" y="{y + 2}" width="{bar:.1f}" '
            f'height="{row_height - 6}" fill="{color}" rx="2"/>'
            f'<text x="{min(x + bar + 4, width - pad_right + 2):.1f}" '
            f'y="{y + row_height - 6}" font-size="10" fill="#555">'
            f'{duration * 1000:.1f}ms</text>'
        )
    axis = (
        f'<line x1="{pad_left}" y1="{height - pad_top}" '
        f'x2="{width - pad_right}" y2="{height - pad_top}" stroke="#bbb"/>'
    )
    return (
        f'<svg width="{width}" height="{height + 14}" '
        f'xmlns="http://www.w3.org/2000/svg">{"".join(parts)}{axis}'
        f'<text x="{pad_left}" y="{height + 10}" font-size="10">0s</text>'
        f'<text x="{width - pad_right}" y="{height + 10}" font-size="10" '
        f'text-anchor="end">{t_span:.3f}s</text></svg>'
    )


def svg_scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 320,
    height: int = 200,
    color: str = "#2266aa",
) -> str:
    """Render ``(x, y)`` points as a standalone ``<svg>`` element."""
    if not points:
        return f'<svg width="{width}" height="{height}"></svg>'
    pad = 34
    xs = [float(p[0]) for p in points]
    ys = [float(p[1]) for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    def sx(x: float) -> float:
        return pad + (x - x_min) / x_span * (width - 2 * pad)

    def sy(y: float) -> float:
        return height - pad - (y - y_min) / y_span * (height - 2 * pad)

    circles = "".join(
        f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" fill="{color}"/>'
        for x, y in points
    )
    axes = (
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#888"/>'
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" stroke="#888"/>'
    )
    labels = (
        f'<text x="{pad}" y="{height - 8}" font-size="10">{x_min:g}</text>'
        f'<text x="{width - pad}" y="{height - 8}" font-size="10" '
        f'text-anchor="end">{x_max:g}</text>'
        f'<text x="{pad - 4}" y="{height - pad}" font-size="10" '
        f'text-anchor="end">{y_min:g}</text>'
        f'<text x="{pad - 4}" y="{pad + 4}" font-size="10" '
        f'text-anchor="end">{y_max:g}</text>'
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg">{axes}{circles}{labels}</svg>'
    )


def _summary_table(profiles: List[RoutineProfile]) -> str:
    headers = ["routine", "thread", "calls", "points", "input", "worst", "induced"]
    head = "".join(f"<th>{escape(h)}</th>" for h in headers)
    body = []
    for profile in profiles:
        cells = "".join(
            f"<td>{escape(str(value))}</td>" for value in routine_summary(profile)
        )
        body.append(f"<tr>{cells}</tr>")
    return f"<table><tr>{head}</tr>{''.join(body)}</table>"


def _bottleneck_table(db: ProfileDatabase, limit: int) -> str:
    ranked = rank_bottlenecks(db)[:limit]
    if not ranked:
        return "<p class='meta'>Not enough plot points for any fit.</p>"
    head = "".join(
        f"<th>{escape(h)}</th>"
        for h in ["routine", "growth", "R²", "points", "cost at 10× input"]
    )
    rows = []
    for item in ranked:
        rows.append(
            "<tr>"
            f"<td>{escape(item.routine)}</td><td>{escape(item.growth)}</td>"
            f"<td>{item.r2:.3f}</td><td>{item.points}</td>"
            f"<td>{item.projection_ratio:.1f}×</td></tr>"
        )
    return f"<table><tr>{head}</tr>{''.join(rows)}</table>"


def render_html_report(
    db: ProfileDatabase,
    title: str = "input-sensitive profile",
    metric: str = "trms",
    plot_limit: int = 8,
) -> str:
    """The full report as one HTML document string."""
    merged = sorted(db.merged().values(), key=lambda p: -p.cost_sum)
    thread_pct, external_pct = induced_split(db)

    figures = []
    for profile in merged[:plot_limit]:
        points = profile.worst_case_points()
        if len(points) < 2:
            continue
        figures.append(
            "<figure>"
            + svg_scatter(points)
            + f"<figcaption>{escape(profile.routine)} — worst-case cost vs "
            f"{escape(metric)} ({len(points)} points)</figcaption></figure>"
        )

    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{escape(title)}</title>
<style>{_STYLE}</style></head><body>
<h1>{escape(title)}</h1>
<p class="meta">{len(db.routines())} routines over {len(db.threads())} threads
&middot; induced input split: {thread_pct:.1f}% thread / {external_pct:.1f}% external
&middot; metric: {escape(metric)}</p>
<h2>Routines (by total cost)</h2>
{_summary_table(merged)}
<h2>Worst-case cost plots</h2>
<div class="plots">{''.join(figures) or "<p class='meta'>No multi-point routines.</p>"}</div>
<h2>Asymptotic bottleneck ranking</h2>
{_bottleneck_table(db, plot_limit)}
</body></html>
"""
