"""Dashboards over a telemetry run: ``repro stats`` rendering.

Two renderers over one loaded :class:`~repro.telemetry.TelemetryRun`:

* :func:`render_telemetry_dashboard` — the terminal view, built from
  the ASCII primitives (:mod:`repro.reporting.ascii_charts`): the span
  tree with wall/CPU timings, per-shard heartbeat progress, metric
  tables, histogram bars, and the self-overhead table when an
  ``repro overhead`` run wrote one;
* :func:`render_telemetry_html` — the same content as one
  self-contained HTML file (no external assets), with the span log
  rendered as an SVG timeline (:func:`repro.reporting.html.svg_timeline`).

Both read *only* the telemetry run — a ``telemetry.jsonl`` copied from
another machine renders identically.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Tuple

from ..telemetry.jsonl import TelemetryRun
from ..telemetry.overhead import overhead_rows, render_overhead_report
from ..telemetry.registry import bucket_bound
from .ascii_charts import bars, table
from .html import PAGE_STYLE, svg_timeline

__all__ = ["render_telemetry_dashboard", "render_telemetry_html"]


def _label_suffix(labels: Dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _span_rows(run: TelemetryRun) -> List[List]:
    """Span tree rows: nested spans indented, same-name siblings folded."""
    ids = {span["id"] for span in run.spans if "id" in span}
    children: Dict[Optional[int], List[Dict]] = {}
    for span in run.spans:
        parent = span.get("parent")
        if parent is not None and parent not in ids:
            parent = None  # orphan (e.g. harvested worker span): top level
        children.setdefault(parent, []).append(span)

    rows: List[List] = []

    def walk(parent: Optional[int], depth: int) -> None:
        group = children.get(parent, ())
        folded: Dict[str, Dict] = {}
        for span in group:
            entry = folded.setdefault(
                span["name"],
                {"calls": 0, "wall": 0.0, "cpu": 0.0, "errors": 0, "ids": []})
            entry["calls"] += 1
            entry["wall"] += span.get("wall", 0.0)
            entry["cpu"] += span.get("cpu", 0.0)
            entry["errors"] += 0 if span.get("ok", True) else 1
            if "id" in span:
                entry["ids"].append(span["id"])
        for name, entry in sorted(folded.items(),
                                  key=lambda item: -item[1]["wall"]):
            rows.append([
                "  " * depth + name,
                entry["calls"],
                f"{entry['wall'] * 1000:.1f}ms",
                f"{entry['cpu'] * 1000:.1f}ms",
                entry["errors"] or "",
            ])
            for span_id in entry["ids"]:
                walk(span_id, depth + 1)

    walk(None, 0)
    return rows


def _heartbeat_section(run: TelemetryRun) -> str:
    shards = run.heartbeats_by_shard()
    if not shards:
        return ""
    rows = []
    series = []
    for shard in sorted(shards):
        beats = shards[shard]
        events = max(beat.get("events", 0) for beat in beats)
        wall = max(beat.get("wall", 0.0) for beat in beats)
        rss = max(beat.get("rss_kb", 0) for beat in beats)
        phase = beats[-1].get("phase", "?")
        rows.append([
            shard, len(beats), phase, events,
            f"{events / wall:,.0f}" if wall > 0 else "-",
            f"{rss / 1024:.0f}M" if rss else "-",
        ])
        series.append((f"shard {shard}", float(events)))
    section = table(
        ["shard", "beats", "phase", "events", "events/s", "peak rss"],
        rows, title="worker heartbeats")
    section += bars(series, title="events processed per shard", unit=" events")
    return section + "\n"


def _metric_sections(run: TelemetryRun) -> str:
    counters = [entry for entry in run.metrics if entry["kind"] == "counter"]
    gauges = [entry for entry in run.metrics if entry["kind"] == "gauge"]
    histograms = [entry for entry in run.metrics if entry["kind"] == "histogram"]
    parts = []
    if counters or gauges:
        rows = [[entry["name"] + _label_suffix(entry["labels"]),
                 entry["kind"], entry["value"]]
                for entry in counters + gauges]
        parts.append(table(["metric", "kind", "value"], rows, title="metrics",
                           left=(0,)))
    for entry in histograms:
        items: List[Tuple[str, float]] = []
        for index, count in entry["buckets"].items():
            bound = bucket_bound(int(index))
            label = "<=inf" if bound == float("inf") else f"<={bound:g}"
            items.append((label, float(count)))
        title = (f"histogram {entry['name']}{_label_suffix(entry['labels'])} "
                 f"(n={entry['count']}, sum={entry['sum']:.1f})")
        parts.append(bars(items, title=title))
    return "\n".join(parts)


def render_telemetry_dashboard(run: TelemetryRun) -> str:
    """The full terminal dashboard of one telemetry run."""
    lines = []
    total_wall = sum(span.get("wall", 0.0) for span in run.spans
                     if span.get("parent") is None)
    lines.append(
        f"telemetry run: {run.path or '(in-memory)'}   "
        f"spans: {len(run.spans)}   heartbeats: {len(run.heartbeats)}   "
        f"metrics: {len(run.metrics)}   top-level wall: {total_wall * 1000:.1f}ms\n")
    if run.spans:
        lines.append(table(["span", "calls", "wall", "cpu", "errors"],
                           _span_rows(run), title="span tree (wall-ordered)",
                           left=(0,)))
    beats = _heartbeat_section(run)
    if beats:
        lines.append(beats)
    metrics = _metric_sections(run)
    if metrics:
        lines.append(metrics)
    if overhead_rows(run.metrics):
        lines.append(render_overhead_report(run.metrics))
    return "\n".join(part for part in lines if part)


def _html_table(headers: List[str], rows: List[List]) -> str:
    head = "".join(f"<th>{escape(str(header))}</th>" for header in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{escape(str(cell))}</td>" for cell in row) + "</tr>"
        for row in rows)
    return f"<table><tr>{head}</tr>{body}</table>"


def _timeline_intervals(run: TelemetryRun) -> List[Tuple[str, float, float, int]]:
    timed = [span for span in run.spans if "start" in span and "id" in span]
    by_id = {span["id"]: span for span in timed}

    def depth_of(span: Dict) -> int:
        depth = 0
        parent = span.get("parent")
        while parent in by_id:
            depth += 1
            parent = by_id[parent].get("parent")
        return depth

    timed.sort(key=lambda span: (span["start"], span["id"]))
    return [(span["name"], span["start"], span.get("wall", 0.0), depth_of(span))
            for span in timed]


def render_telemetry_html(run: TelemetryRun, title: str = "telemetry run") -> str:
    """The dashboard as one self-contained HTML document."""
    spans_svg = svg_timeline(_timeline_intervals(run))
    span_rows = [[row[0].replace("  ", "  "), row[1], row[2], row[3], row[4]]
                 for row in _span_rows(run)]
    sections = [
        f"<h2>Span timeline</h2>{spans_svg}",
        "<h2>Span tree</h2>" + _html_table(
            ["span", "calls", "wall", "cpu", "errors"], span_rows),
    ]
    shards = run.heartbeats_by_shard()
    if shards:
        rows = []
        for shard in sorted(shards):
            beats = shards[shard]
            events = max(beat.get("events", 0) for beat in beats)
            wall = max(beat.get("wall", 0.0) for beat in beats)
            rows.append([shard, len(beats), beats[-1].get("phase", "?"), events,
                         f"{events / wall:,.0f}" if wall > 0 else "-",
                         f"{max(beat.get('rss_kb', 0) for beat in beats) / 1024:.0f}M"])
        sections.append("<h2>Worker heartbeats</h2>" + _html_table(
            ["shard", "beats", "phase", "events", "events/s", "peak rss"], rows))
    if run.metrics:
        rows = []
        for entry in run.metrics:
            if entry["kind"] == "histogram":
                value = f"n={entry['count']} sum={entry['sum']:.1f}"
            else:
                value = entry["value"]
            rows.append([entry["name"] + _label_suffix(entry["labels"]),
                         entry["kind"], value])
        sections.append("<h2>Metrics</h2>" + _html_table(
            ["metric", "kind", "value"], rows))
    overhead = overhead_rows(run.metrics)
    if overhead:
        rows = [[tool, f"{seconds * 1000:.1f}ms", f"{slowdown:.2f}x",
                 f"{space / 1024:.1f} KiB" if space else "-", blocks]
                for tool, seconds, slowdown, space, blocks in overhead]
        sections.append("<h2>Self-overhead (Table 1 style)</h2>" + _html_table(
            ["tool", "best wall", "slowdown", "analysis state", "blocks"], rows))

    meta = (f"{len(run.spans)} spans &middot; {len(run.heartbeats)} heartbeats "
            f"&middot; {len(run.metrics)} metrics")
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{escape(title)}</title>
<style>{PAGE_STYLE}</style></head><body>
<h1>{escape(title)}</h1>
<p class="meta">{meta}</p>
{''.join(sections)}
</body></html>
"""
