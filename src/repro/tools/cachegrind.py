"""cachegrind: cache simulation over the same event stream.

The paper's comparator set (nulgrind, memcheck, callgrind, helgrind)
omits Valgrind's other prominent heavyweight tool, cachegrind; we
implement it as an extension so the overhead story covers the whole
family.  The analysis simulates a two-level cache hierarchy on every
memory access and attributes misses to the routine performing them:

* L1: set-associative, LRU within a set;
* LL (last level): same structure, checked on L1 misses;
* per-routine counters: accesses, L1 misses, LL misses, attributed to
  the routine on top of the (per-thread) call stack, cachegrind-style.

Kernel transfers touch memory too (DMA is invisible to a real cache,
but Valgrind's serialized model performs them with CPU copies), so they
are simulated as ordinary accesses by the issuing thread.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .base import AnalysisTool

__all__ = ["Cachegrind", "CacheConfig", "SetAssociativeCache"]


class CacheConfig:
    """Geometry of one cache level."""

    def __init__(self, sets: int = 64, ways: int = 2, line_cells: int = 4):
        if sets <= 0 or ways <= 0 or line_cells <= 0:
            raise ValueError("cache geometry must be positive")
        self.sets = sets
        self.ways = ways
        self.line_cells = line_cells

    @property
    def capacity_cells(self) -> int:
        return self.sets * self.ways * self.line_cells


class SetAssociativeCache:
    """LRU set-associative cache over cell addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        #: per set: list of resident line tags, most recently used last
        self._sets: List[List[int]] = [[] for _ in range(config.sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch the line holding ``addr``; True on hit."""
        self.accesses += 1
        line = addr // self.config.line_cells
        index = line % self.config.sets
        resident = self._sets[index]
        if line in resident:
            resident.remove(line)
            resident.append(line)
            return True
        self.misses += 1
        if len(resident) >= self.config.ways:
            resident.pop(0)
        resident.append(line)
        return False

    def space_bytes(self) -> int:
        return sum(len(resident) for resident in self._sets) * 8


class Cachegrind(AnalysisTool):
    """Two-level cache simulator with per-routine miss attribution."""

    name = "cachegrind"

    def __init__(self, l1: Optional[CacheConfig] = None,
                 ll: Optional[CacheConfig] = None):
        self.l1 = SetAssociativeCache(l1 or CacheConfig(sets=16, ways=2, line_cells=4))
        self.ll = SetAssociativeCache(ll or CacheConfig(sets=64, ways=4, line_cells=4))
        self._stacks: Dict[int, List[str]] = {}
        #: routine -> [accesses, l1 misses, ll misses]
        self.by_routine: Dict[str, List[int]] = {}

    def _current_routine(self, thread: int) -> str:
        stack = self._stacks.get(thread)
        if stack:
            return stack[-1]
        return f"<root:{thread}>"

    def _access(self, thread: int, addr: int) -> None:
        counters = self.by_routine.setdefault(self._current_routine(thread), [0, 0, 0])
        counters[0] += 1
        if not self.l1.access(addr):
            counters[1] += 1
            if not self.ll.access(addr):
                counters[2] += 1

    # -- events ------------------------------------------------------------------

    def on_call(self, thread: int, routine: str) -> None:
        self._stacks.setdefault(thread, []).append(routine)

    def on_return(self, thread: int) -> None:
        stack = self._stacks.get(thread)
        if stack:
            stack.pop()

    def on_read(self, thread: int, addr: int) -> None:
        self._access(thread, addr)

    def on_write(self, thread: int, addr: int) -> None:
        self._access(thread, addr)

    def on_kernel_read(self, thread: int, addr: int) -> None:
        self._access(thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        self._access(thread, addr)

    # -- results -------------------------------------------------------------------

    def miss_rates(self) -> Tuple[float, float]:
        """Global (L1, LL) miss rates in [0, 1]."""
        l1_rate = self.l1.misses / self.l1.accesses if self.l1.accesses else 0.0
        ll_rate = self.ll.misses / self.ll.accesses if self.ll.accesses else 0.0
        return l1_rate, ll_rate

    def worst_routines(self, count: int = 5) -> List[Tuple[str, int]]:
        """Routines with the most L1 misses."""
        ranked = sorted(self.by_routine.items(), key=lambda item: -item[1][1])
        return [(routine, counters[1]) for routine, counters in ranked[:count]]

    def space_bytes(self) -> int:
        return self.l1.space_bytes() + self.ll.space_bytes() + 48 * len(self.by_routine)

    def report(self) -> dict:
        l1_rate, ll_rate = self.miss_rates()
        return {
            "l1_accesses": self.l1.accesses,
            "l1_misses": self.l1.misses,
            "l1_miss_rate": l1_rate,
            "ll_misses": self.ll.misses,
            "ll_miss_rate": ll_rate,
            "by_routine": {k: tuple(v) for k, v in self.by_routine.items()},
        }
