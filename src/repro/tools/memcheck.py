"""memcheck: memory-state shadowing (definedness + heap addressability).

The real memcheck shadows every byte of memory with validity (V) and
addressability (A) bits; per the paper it "does not trace function
calls/returns and mainly relies on memory read/write events".  This
reimplementation keeps the same per-event profile:

* a **V shadow** at cell granularity — cells become defined when written
  (by the program or by a kernel buffer fill); reading an undefined cell
  is an *uninitialised-read* error;
* an **A shadow for the heap** — reads/writes to heap addresses (the
  VM's bump-allocated region) outside any allocation are
  *invalid-access* errors.  Non-heap addresses (globals, preloaded data)
  are always addressable, mirroring memcheck's treatment of statics.

To bound the error report (real memcheck does the same), each distinct
(kind, address) pair is recorded once.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.shadow import DictShadow
from .base import AnalysisTool

__all__ = ["Memcheck"]

_HEAP_BASE = 1 << 20


class Memcheck(AnalysisTool):
    """Definedness and heap-addressability checker."""

    name = "memcheck"

    def __init__(self, heap_base: int = _HEAP_BASE, track_origins: bool = False):
        self.heap_base = heap_base
        #: --track-origins: record which store defined each cell (off by
        #: default, as in the real tool — it costs time and space)
        self.track_origins = track_origins
        #: V shadow: 1 = defined
        self._defined = DictShadow()
        #: A shadow: 1 = inside a live heap allocation
        self._addressable = DictShadow()
        #: origin shadow (--track-origins): per cell, which thread and
        #: store sequence number defined it — used to explain errors
        self._origin = DictShadow()
        self._stores = 0
        self.errors: List[Tuple[str, int, int]] = []
        self._reported: Set[Tuple[str, int]] = set()
        #: live heap allocations: base -> size
        self._live: Dict[int, int] = {}
        #: released allocations: base -> size (for double-free reports)
        self._freed: Dict[int, int] = {}
        self.heap_blocks = 0
        self.heap_cells = 0
        self.frees = 0

    def _error(self, kind: str, thread: int, addr: int) -> None:
        key = (kind, addr)
        if key not in self._reported:
            self._reported.add(key)
            self.errors.append((kind, thread, addr))

    def _check_addressable(self, thread: int, addr: int) -> None:
        if addr >= self.heap_base and not self._addressable.get(addr):
            self._error("invalid-access", thread, addr)

    def on_alloc(self, thread: int, base: int, size: int) -> None:
        self.heap_blocks += 1
        self.heap_cells += size
        self._live[base] = size
        for addr in range(base, base + size):
            self._addressable.set(addr, 1)

    def on_free(self, thread: int, base: int) -> None:
        """Release an allocation: later accesses are use-after-free."""
        size = self._live.pop(base, None)
        if size is None:
            # distinguish "never an allocation" from "freed twice"
            kind = "double-free" if base in self._freed else "invalid-free"
            self._error(kind, thread, base)
            return
        self.frees += 1
        self._freed[base] = size
        for addr in range(base, base + size):
            self._addressable.set(addr, 0)
            self._defined.set(addr, 0)

    def on_read(self, thread: int, addr: int) -> None:
        self._check_addressable(thread, addr)
        if not self._defined.get(addr):
            self._error("uninitialised-read", thread, addr)

    def on_write(self, thread: int, addr: int) -> None:
        self._check_addressable(thread, addr)
        self._defined[addr] = 1
        if self.track_origins:
            self._stores += 1
            self._origin[addr] = (thread << 32) | (self._stores & 0xFFFFFFFF)

    def on_kernel_read(self, thread: int, addr: int) -> None:
        # sending undefined memory to the outside world is an error too
        self._check_addressable(thread, addr)
        if not self._defined.get(addr):
            self._error("uninitialised-syscall-param", thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        self._check_addressable(thread, addr)
        self._defined[addr] = 1
        if self.track_origins:
            self._stores += 1
            self._origin[addr] = self._stores & 0xFFFFFFFF   # kernel origin

    def mark_defined(self, base: int, size: int) -> None:
        """Pre-mark cells as defined (for preloaded/poked guest data)."""
        for addr in range(base, base + size):
            self._defined.set(addr, 1)

    def origin_of(self, addr: int):
        """(thread, store#) that last defined ``addr``; thread -1 = kernel."""
        packed = self._origin.get(addr)
        if not packed:
            return None
        thread = packed >> 32
        return (thread if thread else -1, packed & 0xFFFFFFFF)

    def space_bytes(self) -> int:
        # A and V states are single bits per cell in the real tool, which
        # additionally compresses runs — the paper credits exactly this
        # for memcheck's low footprint.  Model the bit packing: 2 bits
        # per tracked cell, plus 4 bytes per cell of origin data if on.
        av_cells = len(self._defined) + len(self._addressable)
        return (av_cells + 7) // 8 + self._origin.space_bytes()

    def leaked_blocks(self) -> List[Tuple[int, int]]:
        """Allocations never freed — memcheck's leak summary."""
        return sorted(self._live.items())

    def report(self) -> dict:
        return {
            "errors": list(self.errors),
            "heap_blocks": self.heap_blocks,
            "heap_cells": self.heap_cells,
            "frees": self.frees,
            "leaks": self.leaked_blocks(),
        }
