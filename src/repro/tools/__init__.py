"""Comparator analysis tools sharing the profilers' event bus.

``make_tool(name)`` builds a fresh instance of any evaluated tool by its
Table 1 column name: ``nulgrind``, ``memcheck``, ``callgrind``,
``helgrind``, ``aprof-rms``, ``aprof-trms``.  (``native`` is not a tool:
the benchmarks express it by running the substrate with ``tools=None``.)
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.events import TraceConsumer
from ..core.rms import RmsProfiler
from ..core.trms import TrmsProfiler
from .base import AnalysisTool
from .cachegrind import CacheConfig, Cachegrind, SetAssociativeCache
from .callgrind import Callgrind
from .helgrind import Helgrind, Race
from .memcheck import Memcheck
from .nulgrind import Nulgrind
from .sampling import SamplingShim

__all__ = [
    "AnalysisTool",
    "CacheConfig",
    "Cachegrind",
    "SetAssociativeCache",
    "Callgrind",
    "Helgrind",
    "Race",
    "Memcheck",
    "Nulgrind",
    "SamplingShim",
    "TOOL_NAMES",
    "make_tool",
]

_FACTORIES: Dict[str, Callable[[], TraceConsumer]] = {
    "nulgrind": Nulgrind,
    "cachegrind": Cachegrind,
    "memcheck": Memcheck,
    "callgrind": Callgrind,
    "helgrind": Helgrind,
    "aprof-rms": RmsProfiler,
    "aprof-trms": TrmsProfiler,
}

#: evaluated tool names, in the paper's Table 1 column order
TOOL_NAMES: List[str] = [
    "nulgrind",
    "memcheck",
    "callgrind",
    "helgrind",
    "aprof-rms",
    "aprof-trms",
]


def make_tool(name: str) -> TraceConsumer:
    """A fresh instance of the tool called ``name`` (see TOOL_NAMES)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown tool {name!r}; known: {sorted(_FACTORIES)}") from None
    return factory()
