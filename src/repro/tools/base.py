"""Common base for the comparator analysis tools.

The paper's overhead evaluation (Table 1, Figure 14) compares aprof
against four other Valgrind tools that share the instrumentation
substrate but do different per-event analysis work: nulgrind (nothing),
memcheck (memory state shadowing), callgrind (call-graph profiling) and
helgrind (happens-before race detection).  This package reimplements
each tool's *analysis* over the same event bus the profilers consume, so
the reproduction's overhead comparison has the same structure as the
paper's: identical event stream, different per-event work.
"""

from __future__ import annotations

from ..core.events import TraceConsumer

__all__ = ["AnalysisTool"]


class AnalysisTool(TraceConsumer):
    """A comparator analysis tool.

    Beyond the :class:`TraceConsumer` callbacks, tools expose a
    :meth:`report` with their analysis results (errors found, call graph,
    races, …) so tests can verify they actually do their job — an
    overhead comparison against tools that do nothing would be hollow.
    """

    name = "tool"

    def report(self) -> dict:
        """Tool-specific analysis results (shape documented per tool)."""
        return {}
