"""callgrind: call-graph profiling.

Per the paper, callgrind "instruments function calls/returns, but not
memory accesses".  This reimplementation builds, per thread:

* the dynamic call graph — (caller, callee) edge counts;
* inclusive and exclusive basic-block cost per function (inclusive cost
  of recursive activations is counted once per outermost activation, the
  standard callgrind convention).

Reads and writes are deliberately not handled, so the tool's per-event
work matches the real callgrind's profile: call/return/cost only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .base import AnalysisTool

__all__ = ["Callgrind"]


class _Frame:
    __slots__ = ("routine", "cost_at_entry", "exclusive")

    def __init__(self, routine: str, cost_at_entry: int):
        self.routine = routine
        self.cost_at_entry = cost_at_entry
        self.exclusive = 0


class Callgrind(AnalysisTool):
    """Call-graph generating profiler."""

    name = "callgrind"

    def __init__(self) -> None:
        #: (caller, callee) -> number of calls; caller None = thread entry
        self.edges: Dict[Tuple[Optional[str], str], int] = {}
        self.calls: Dict[str, int] = {}
        self.inclusive: Dict[str, int] = {}
        self.exclusive: Dict[str, int] = {}
        self._stacks: Dict[int, List[_Frame]] = {}
        self._costs: Dict[int, int] = {}

    def on_call(self, thread: int, routine: str) -> None:
        stack = self._stacks.setdefault(thread, [])
        self._costs.setdefault(thread, 0)
        caller = stack[-1].routine if stack else None
        edge = (caller, routine)
        self.edges[edge] = self.edges.get(edge, 0) + 1
        self.calls[routine] = self.calls.get(routine, 0) + 1
        stack.append(_Frame(routine, self._costs[thread]))

    def on_return(self, thread: int) -> None:
        stack = self._stacks.get(thread)
        if not stack:
            return
        frame = stack.pop()
        total = self._costs[thread] - frame.cost_at_entry
        self.exclusive[frame.routine] = self.exclusive.get(frame.routine, 0) + frame.exclusive
        # recursive activations: only the outermost adds inclusive cost
        if all(other.routine != frame.routine for other in stack):
            self.inclusive[frame.routine] = self.inclusive.get(frame.routine, 0) + total

    def on_cost(self, thread: int, units: int) -> None:
        self._costs[thread] = self._costs.get(thread, 0) + units
        stack = self._stacks.get(thread)
        if stack:
            stack[-1].exclusive += units

    def on_finish(self) -> None:
        for thread, stack in self._stacks.items():
            while stack:
                self.on_return(thread)

    def top_functions(self, count: int = 10) -> List[Tuple[str, int]]:
        """Functions with the highest inclusive cost."""
        ranked = sorted(self.inclusive.items(), key=lambda item: -item[1])
        return ranked[:count]

    def space_bytes(self) -> int:
        return 64 * (len(self.edges) + len(self.inclusive))

    def report(self) -> dict:
        return {
            "edges": dict(self.edges),
            "calls": dict(self.calls),
            "inclusive": dict(self.inclusive),
            "exclusive": dict(self.exclusive),
        }
