"""nulgrind: the do-nothing tool.

Valgrind's nulgrind performs no analysis and exists to measure the cost
of the instrumentation substrate itself.  Faithfully, every per-event
handler here is the inherited no-op — the tool pays method dispatch and
nothing else, so the overhead benchmarks can report "substrate only"
numbers to divide by, exactly as the paper normalises its slowdowns
against nulgrind.  A routine-activation counter (one increment per call,
a negligible fraction of the event stream) proves the tool was attached.
"""

from __future__ import annotations

from .base import AnalysisTool

__all__ = ["Nulgrind"]


class Nulgrind(AnalysisTool):
    """Observes the stream; analyses nothing."""

    name = "nulgrind"

    def __init__(self) -> None:
        self.events = 0

    def on_call(self, thread, routine):
        self.events += 1

    def report(self) -> dict:
        return {"events": self.events}
