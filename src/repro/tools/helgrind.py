"""helgrind: happens-before data-race detection.

The paper uses helgrind as its "tool most akin to ours" comparator: it
is the only other evaluated tool that analyses concurrency, and it is
*slower* than aprof-trms.  This reimplementation runs the classic
vector-clock happens-before algorithm over the same event stream:

* one vector clock per thread, advanced at every release;
* lock (and semaphore) release/acquire transfer clocks through a per-
  lock clock, thread create/join through direct joins;
* per cell, the epoch of the last write and the epochs of reads since
  then; a read-write or write-write pair unordered by happens-before is
  a race.

Kernel-mediated accesses are attributed to the issuing thread (a syscall
executes in program order for its thread).  Each racy address is
reported once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .base import AnalysisTool

__all__ = ["Helgrind", "Race"]


class Race(Tuple):
    """A detected race: (addr, kind, thread_a, thread_b)."""

    def __new__(cls, addr: int, kind: str, thread_a: int, thread_b: int):
        return tuple.__new__(cls, (addr, kind, thread_a, thread_b))

    @property
    def addr(self) -> int:
        return self[0]

    @property
    def kind(self) -> str:
        return self[1]


class _CellState:
    __slots__ = ("write_thread", "write_clock", "write_vc", "reads")

    def __init__(self) -> None:
        self.write_thread: Optional[int] = None
        self.write_clock = 0
        #: full vector clock snapshot of the last write — the classic
        #: (pre-FastTrack) algorithm helgrind derives from; copying it on
        #: every write is exactly the cost that makes helgrind the
        #: heaviest tool of the paper's comparison
        self.write_vc: Optional[Dict[int, int]] = None
        #: thread -> clock of its last read since the last write
        self.reads: Dict[int, int] = {}


class Helgrind(AnalysisTool):
    """Vector-clock happens-before race detector."""

    name = "helgrind"

    def __init__(self) -> None:
        self._clocks: Dict[int, Dict[int, int]] = {}
        self._lock_clocks: Dict[object, Dict[int, int]] = {}
        self._cells: Dict[int, _CellState] = {}
        self.races: List[Race] = []
        self._racy_addresses: Set[int] = set()

    # -- vector clock plumbing ---------------------------------------------------

    def _clock(self, thread: int) -> Dict[int, int]:
        clock = self._clocks.get(thread)
        if clock is None:
            clock = {thread: 1}
            self._clocks[thread] = clock
        return clock

    @staticmethod
    def _join(into: Dict[int, int], other: Dict[int, int]) -> None:
        for tid, value in other.items():
            if value > into.get(tid, 0):
                into[tid] = value

    def _happens_before(self, thread: int, clock_value: int, current: Dict[int, int]) -> bool:
        """Did (thread, clock_value) happen before the current thread's view?"""
        return clock_value <= current.get(thread, 0)

    # -- synchronization events ------------------------------------------------------

    def on_lock_acquire(self, thread: int, lock_id) -> None:
        lock_clock = self._lock_clocks.get(lock_id)
        if lock_clock:
            self._join(self._clock(thread), lock_clock)

    def on_lock_release(self, thread: int, lock_id) -> None:
        clock = self._clock(thread)
        self._lock_clocks[lock_id] = dict(clock)
        clock[thread] = clock.get(thread, 0) + 1

    def on_thread_create(self, parent: int, child: int) -> None:
        parent_clock = self._clock(parent)
        self._join(self._clock(child), parent_clock)
        parent_clock[parent] = parent_clock.get(parent, 0) + 1

    def on_thread_join(self, parent: int, child: int) -> None:
        self._join(self._clock(parent), self._clock(child))

    # -- memory events ------------------------------------------------------------------

    def _record_race(self, addr: int, kind: str, thread_a: int, thread_b: int) -> None:
        if addr not in self._racy_addresses:
            self._racy_addresses.add(addr)
            self.races.append(Race(addr, kind, thread_a, thread_b))

    def on_read(self, thread: int, addr: int) -> None:
        cell = self._cells.get(addr)
        if cell is None:
            cell = _CellState()
            self._cells[addr] = cell
        clock = self._clock(thread)
        if (
            cell.write_thread is not None
            and cell.write_thread != thread
            and not self._happens_before(cell.write_thread, cell.write_clock, clock)
        ):
            self._record_race(addr, "read-after-write", cell.write_thread, thread)
        cell.reads[thread] = clock.get(thread, 0)

    def on_write(self, thread: int, addr: int) -> None:
        cell = self._cells.get(addr)
        if cell is None:
            cell = _CellState()
            self._cells[addr] = cell
        clock = self._clock(thread)
        if (
            cell.write_thread is not None
            and cell.write_thread != thread
            and not self._happens_before(cell.write_thread, cell.write_clock, clock)
        ):
            self._record_race(addr, "write-after-write", cell.write_thread, thread)
        for reader, read_clock in cell.reads.items():
            if reader != thread and not self._happens_before(reader, read_clock, clock):
                self._record_race(addr, "write-after-read", reader, thread)
        cell.write_thread = thread
        cell.write_clock = clock.get(thread, 0)
        cell.write_vc = dict(clock)
        cell.reads = {}

    def on_kernel_read(self, thread: int, addr: int) -> None:
        self.on_read(thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        self.on_write(thread, addr)

    # -- accounting -----------------------------------------------------------------------

    def space_bytes(self) -> int:
        cell_bytes = sum(
            24 + 8 * len(cell.reads) + 8 * len(cell.write_vc or ())
            for cell in self._cells.values()
        )
        clock_bytes = sum(8 * len(clock) for clock in self._clocks.values())
        lock_bytes = sum(8 * len(clock) for clock in self._lock_clocks.values())
        return cell_bytes + clock_bytes + lock_bytes

    def report(self) -> dict:
        return {"races": list(self.races)}
