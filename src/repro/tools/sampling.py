"""Burst sampling of memory events — the accuracy/overhead dial.

The paper's profilers observe *every* memory access; its related work
(bursty tracing, the Arnold–Ryder framework) trades accuracy for
overhead by analysing only periodic bursts of events.  This shim makes
that trade measurable on our stack: it sits between the substrate and a
profiler and forwards

* **all** structural events (calls, returns, thread switches, costs,
  synchronization, allocation) — dropping those would corrupt shadow
  stacks, not just blur sizes;
* **all writes** — a dropped write makes every later read of that cell
  look like fresh input, an upward bias the burst ratio cannot correct;
  dropped *reads* only shrink counts, which the ratio recovers;
* **all kernel transfers** — they carry external-input semantics whose
  loss would silently change the metric's meaning, not its precision;
* only ``burst`` out of every ``period`` plain memory **reads**.

With ``period = 1`` the shim is the identity.  The ablation bench
measures how the rms estimate degrades (and what analysis time is
saved) as the period grows; :meth:`scale` gives the naive burst-ratio
correction factor for size estimates.
"""

from __future__ import annotations

from ..core.events import TraceConsumer

__all__ = ["SamplingShim"]


class SamplingShim(TraceConsumer):
    """Forward a periodic burst of memory events to an inner consumer."""

    name = "sampling-shim"

    def __init__(self, inner: TraceConsumer, period: int = 10, burst: int = 1):
        if period <= 0 or burst <= 0:
            raise ValueError("period and burst must be positive")
        if burst > period:
            raise ValueError("burst cannot exceed period")
        self.inner = inner
        self.period = period
        self.burst = burst
        self._phase = 0
        self.seen = 0
        self.forwarded = 0

    def scale(self) -> float:
        """Correction factor for sampled size estimates."""
        return self.period / self.burst

    def _sample(self) -> bool:
        take = self._phase < self.burst
        self._phase += 1
        if self._phase >= self.period:
            self._phase = 0
        self.seen += 1
        if take:
            self.forwarded += 1
        return take

    # -- sampled events -----------------------------------------------------------

    def on_read(self, thread: int, addr: int) -> None:
        if self._sample():
            self.inner.on_read(thread, addr)

    # -- always-forwarded events -----------------------------------------------------

    def on_write(self, thread: int, addr: int) -> None:
        self.inner.on_write(thread, addr)

    def on_start(self) -> None:
        self.inner.on_start()

    def on_call(self, thread: int, routine: str) -> None:
        self.inner.on_call(thread, routine)

    def on_return(self, thread: int) -> None:
        self.inner.on_return(thread)

    def on_kernel_read(self, thread: int, addr: int) -> None:
        self.inner.on_kernel_read(thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        self.inner.on_kernel_write(thread, addr)

    def on_thread_switch(self, thread: int) -> None:
        self.inner.on_thread_switch(thread)

    def on_cost(self, thread: int, units: int) -> None:
        self.inner.on_cost(thread, units)

    def on_lock_acquire(self, thread: int, lock_id) -> None:
        self.inner.on_lock_acquire(thread, lock_id)

    def on_lock_release(self, thread: int, lock_id) -> None:
        self.inner.on_lock_release(thread, lock_id)

    def on_thread_create(self, parent: int, child: int) -> None:
        self.inner.on_thread_create(parent, child)

    def on_thread_join(self, parent: int, child: int) -> None:
        self.inner.on_thread_join(parent, child)

    def on_alloc(self, thread: int, base: int, size: int) -> None:
        self.inner.on_alloc(thread, base, size)

    def on_free(self, thread: int, base: int) -> None:
        self.inner.on_free(thread, base)

    def on_finish(self) -> None:
        self.inner.on_finish()

    def space_bytes(self) -> int:
        return self.inner.space_bytes()
