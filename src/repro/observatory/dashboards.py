"""Observatory dashboards: the operator's view of a run history.

ASCII for the terminal (``repro observe report``), one self-contained
HTML file for sharing (``--html``), both built from the same store
queries:

* **fleet summary** — one row per ingested run (id, commit, time,
  source, scale, routines, events);
* **growth trajectories** — per routine, a sparkline of the fitted
  power-law exponents across runs next to the growth-class path, so a
  class that is quietly bending upward is visible before it jumps;
* **alert feed** — the severity-ranked drift verdicts.

Rendering reuses the shared primitives: ``reporting.ascii_charts``
(tables, sparklines) and ``reporting.html`` (page style, SVG scatter).
"""

from __future__ import annotations

from datetime import datetime, timezone
from html import escape
from typing import List, Optional

from ..reporting.ascii_charts import sparkline, table
from ..reporting.html import PAGE_STYLE, svg_scatter
from .drift import DriftAlert, RoutineTrajectory, detect_drift, trajectories
from .store import ObservatoryStore

__all__ = [
    "render_observatory_report",
    "render_observatory_html",
    "render_alert_feed",
]

_VERDICT_COLORS = {
    "regressed": "#aa2222",
    "slower": "#cc8833",
    "added": "#2266aa",
    "removed": "#777777",
    "faster": "#44aa77",
    "improved": "#227744",
}


def _when(timestamp: int) -> str:
    if not timestamp:
        return "-"
    return datetime.fromtimestamp(
        timestamp, tz=timezone.utc).strftime("%Y-%m-%d %H:%M")


def _ratio(value: Optional[float]) -> str:
    return f"{value:.2f}x" if value is not None else "-"


def _short(identifier: str, width: int = 10) -> str:
    return identifier[:width] if identifier else "-"


def _class_path(trajectory: RoutineTrajectory) -> str:
    """Deduplicated growth-class path, e.g. ``O(n) -> O(n^2)``."""
    path: List[str] = []
    for name in trajectory.classes:
        if not path or path[-1] != name:
            path.append(name)
    return " -> ".join(path) if path else "-"


def _fleet_rows(store: ObservatoryStore) -> List[List[str]]:
    return [
        [
            _short(info.run_id),
            _short(info.git_sha, 8),
            _when(info.timestamp),
            info.source or "-",
            f"{info.scale:g}" if info.scale else "-",
            str(info.routines),
            str(info.events),
        ]
        for info in store.runs()
    ]


def render_alert_feed(alerts: List[DriftAlert], title: str = "Alert feed") -> str:
    """The severity-ranked drift verdicts as a text table."""
    if not alerts:
        return f"{title}\n(no drift: every routine holds its growth class)\n"
    rows = [
        [
            alert.routine,
            alert.verdict,
            alert.old_growth or "-",
            alert.new_growth or "-",
            _ratio(alert.cost_ratio),
            str(alert.runs_observed),
            str(alert.changepoints),
            _short(alert.last_run),
        ]
        for alert in alerts
    ]
    return table(
        ["routine", "verdict", "old growth", "new growth", "cost ratio",
         "runs", "changes", "last run"],
        rows, title=title, left=(0, 1),
    )


def render_observatory_report(
    store: ObservatoryStore,
    tolerance: float = 1.30,
    limit: int = 20,
) -> str:
    """The full ASCII dashboard of one history store."""
    runs = store.runs()
    lines = [
        f"Profile observatory — {len(runs)} run(s), "
        f"{len(store.routines())} routine(s)  [{store.path}]",
        "",
    ]
    if not runs:
        lines.append("(empty store: `repro observe ingest` some runs first)")
        return "\n".join(lines) + "\n"
    lines.append(table(
        ["run", "commit", "when (UTC)", "source", "scale", "routines", "events"],
        _fleet_rows(store), title="Fleet summary", left=(0, 1, 2, 3),
    ))

    all_trajectories = trajectories(store, tolerance)
    alerts = detect_drift(store, tolerance)
    alerted = {alert.routine: alert for alert in alerts}
    # worst routines first, stable ones after — same order the operator
    # would triage in
    ranked = sorted(
        (t for t in all_trajectories if t.entries),
        key=lambda t: (0 if t.routine in alerted else 1,
                       -len(t.changepoints), t.routine),
    )
    if ranked:
        exponent_rows = []
        for trajectory in ranked[:limit]:
            alert = alerted.get(trajectory.routine)
            exponent_rows.append([
                trajectory.routine,
                str(len(trajectory.entries)),
                sparkline(trajectory.exponents),
                _class_path(trajectory),
                (f"{alert.verdict} {_ratio(alert.cost_ratio)}"
                 if alert else "steady"),
            ])
        lines.append(table(
            ["routine", "runs", "exponent", "growth path", "drift"],
            exponent_rows,
            title=f"Growth trajectories (top {min(limit, len(ranked))} "
                  f"of {len(ranked)}, worst first)",
            left=(0, 2, 3, 4),
        ))
    lines.append(render_alert_feed(alerts))
    return "\n".join(lines)


def _html_table(headers: List[str], rows: List[List[str]]) -> str:
    head = "".join(f"<th>{escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{escape(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _html_alert_feed(alerts: List[DriftAlert]) -> str:
    if not alerts:
        return "<p class='meta'>No drift: every routine holds its growth class.</p>"
    rows = []
    for alert in alerts:
        color = _VERDICT_COLORS.get(alert.verdict, "#555")
        rows.append(
            "<tr>"
            f"<td>{escape(alert.routine)}</td>"
            f"<td><b style='color:{color}'>{escape(alert.verdict)}</b></td>"
            f"<td>{escape(alert.old_growth or '-')}</td>"
            f"<td>{escape(alert.new_growth or '-')}</td>"
            f"<td>{escape(_ratio(alert.cost_ratio))}</td>"
            f"<td>{alert.runs_observed}</td>"
            f"<td>{alert.changepoints}</td>"
            f"<td>{escape(_short(alert.last_run))}</td>"
            "</tr>"
        )
    head = "".join(
        f"<th>{escape(h)}</th>"
        for h in ["routine", "verdict", "old", "new", "cost ratio", "runs",
                  "changes", "last run"]
    )
    return f"<table><tr>{head}</tr>{''.join(rows)}</table>"


def render_observatory_html(
    store: ObservatoryStore,
    tolerance: float = 1.30,
    plot_limit: int = 8,
    title: str = "profile observatory",
) -> str:
    """The dashboard as one self-contained HTML document."""
    runs = store.runs()
    alerts = detect_drift(store, tolerance)
    alerted = {alert.routine for alert in alerts}
    all_trajectories = [t for t in trajectories(store, tolerance) if t.entries]
    ranked = sorted(
        all_trajectories,
        key=lambda t: (0 if t.routine in alerted else 1,
                       -len(t.changepoints), t.routine),
    )

    figures = []
    for trajectory in ranked[:plot_limit]:
        series = [(index, exponent)
                  for index, exponent in enumerate(trajectory.exponents)
                  if exponent is not None]
        if len(series) < 2:
            continue
        color = "#aa2222" if trajectory.routine in alerted else "#2266aa"
        figures.append(
            "<figure>"
            + svg_scatter(series, color=color)
            + f"<figcaption>{escape(trajectory.routine)} — fitted exponent "
            f"per run ({escape(_class_path(trajectory))})</figcaption></figure>"
        )
    # the worst alert also shows its latest raw cost plot, when stored
    cost_plot = ""
    if alerts:
        worst = alerts[0]
        seq = next((info.seq for info in reversed(runs)
                    if store.points_for(info.seq, worst.routine)), None)
        if seq is not None:
            points = store.points_for(seq, worst.routine)
            cost_plot = (
                f"<h2>Worst alert — {escape(worst.routine)} "
                f"({escape(worst.verdict)})</h2><div class='plots'><figure>"
                + svg_scatter(points, color="#aa2222")
                + "<figcaption>latest stored worst-case cost plot"
                "</figcaption></figure></div>"
            )

    fleet = _html_table(
        ["run", "commit", "when (UTC)", "source", "scale", "routines", "events"],
        _fleet_rows(store))
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{escape(title)}</title>
<style>{PAGE_STYLE}</style></head><body>
<h1>{escape(title)}</h1>
<p class="meta">{len(runs)} run(s) &middot; {len(store.routines())} routine(s)
&middot; {len(alerts)} alert(s) &middot; store: {escape(store.path)}</p>
<h2>Fleet summary</h2>
{fleet}
<h2>Alert feed</h2>
{_html_alert_feed(alerts)}
<h2>Exponent trajectories</h2>
<div class="plots">{''.join(figures) or "<p class='meta'>Not enough history for any trajectory.</p>"}</div>
{cost_plot}
</body></html>
"""
