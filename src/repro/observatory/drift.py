"""Growth-rate drift detection over a run history.

:func:`repro.reporting.diffing.diff_databases` answers "did this
routine scale worse between *these two* runs"; this module generalises
the question to the whole history the store has seen: per-routine
growth-class *trajectories*, changepoint flagging, and a
severity-ranked alert feed.  An O(n) → O(n log n) → O(n²) slide across
commits — invisible to any pairwise diff of adjacent versions if each
step stays inside the tolerance — shows up here as a trajectory whose
endpoints disagree.

Semantics (shared vocabulary with the pairwise diff, enforced by using
its :func:`~repro.reporting.diffing.classify_pair`):

* a routine's trajectory is its fitted-curve rows across runs, in run
  order; runs where it was unfittable (< 3 distinct sizes) or absent
  contribute no entry;
* a **changepoint** is an adjacent pair of entries whose verdict is not
  ``unchanged`` — a class-rank jump, or a predicted-cost ratio at the
  common largest size beyond the tolerance;
* the routine's overall **verdict** compares the first and the last
  fittable entry (so a slow multi-run slide still classifies as one
  regression); a routine absent from the newest run is ``removed``, one
  that only ever appeared in later runs with a single entry is
  ``added``;
* alerts are every non-``unchanged`` verdict, ranked by the shared
  severity order, worst first.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from ..reporting.diffing import SEVERITY, classify_pair
from .store import CurveRow, ObservatoryStore

__all__ = [
    "Changepoint",
    "RoutineTrajectory",
    "DriftAlert",
    "trajectories",
    "detect_drift",
]


class Changepoint(NamedTuple):
    """One adjacent-run shift in a routine's cost function."""

    run_id: str           #: run where the new behaviour first appears
    prev_run_id: str
    old_growth: str
    new_growth: str
    cost_ratio: Optional[float]
    verdict: str          #: regressed | improved | slower | faster


class RoutineTrajectory(NamedTuple):
    """One routine's fitted curves across the history, in run order."""

    routine: str
    entries: List[CurveRow]       #: fittable runs only
    run_ids: List[str]            #: run id per entry (parallel list)
    changepoints: List[Changepoint]

    @property
    def classes(self) -> List[str]:
        return [entry.model for entry in self.entries]

    @property
    def exponents(self) -> List[Optional[float]]:
        return [entry.exponent for entry in self.entries]


class DriftAlert(NamedTuple):
    """One routine's overall verdict over the observed history."""

    routine: str
    verdict: str          #: regressed | improved | slower | faster | added | removed
    old_growth: Optional[str]
    new_growth: Optional[str]
    #: last/first predicted-cost ratio at the common largest size
    cost_ratio: Optional[float]
    first_run: str        #: run id of the first fittable observation
    last_run: str         #: run id of the last fittable observation
    runs_observed: int    #: fittable entries in the trajectory
    changepoints: int


def _pair_ratio(old: CurveRow, new: CurveRow) -> Optional[float]:
    common_max = min(old.max_size, new.max_size)
    old_cost = old.predict(common_max)
    if old_cost <= 1e-9:
        return None
    return max(new.predict(common_max), 0.0) / old_cost


def trajectories(
    store: ObservatoryStore, tolerance: float = 1.30,
) -> List[RoutineTrajectory]:
    """Every routine's trajectory with its changepoints, by name."""
    run_id_by_seq = {info.seq: info.run_id for info in store.runs()}
    result = []
    for routine in store.routines():
        entries = store.curve_trajectory(routine)
        run_ids = [run_id_by_seq.get(entry.run_seq, "?") for entry in entries]
        changepoints = []
        for previous, current, prev_id, cur_id in zip(
                entries, entries[1:], run_ids, run_ids[1:]):
            verdict = classify_pair(previous.order, current.order,
                                    _pair_ratio(previous, current), tolerance)
            if verdict != "unchanged":
                changepoints.append(Changepoint(
                    run_id=cur_id,
                    prev_run_id=prev_id,
                    old_growth=previous.model,
                    new_growth=current.model,
                    cost_ratio=_pair_ratio(previous, current),
                    verdict=verdict,
                ))
        result.append(RoutineTrajectory(routine, entries, run_ids, changepoints))
    return result


def detect_drift(
    store: ObservatoryStore, tolerance: float = 1.30,
) -> List[DriftAlert]:
    """Severity-ranked alerts over the whole history (worst first)."""
    runs = store.runs()
    if not runs:
        return []
    all_trajectories = trajectories(store, tolerance)
    # added/removed are judged against *profiled* runs only — ingesting a
    # curveless run (a bench envelope, a telemetry log) must not make
    # every routine look removed
    profiled = {entry.run_seq
                for trajectory in all_trajectories
                for entry in trajectory.entries}
    if not profiled:
        return []
    order = {info.seq: position for position, info in enumerate(runs)}
    latest_seq = max(profiled, key=lambda seq: order.get(seq, -1))
    total_runs = len(profiled)
    alerts: List[DriftAlert] = []
    for trajectory in all_trajectories:
        entries = trajectory.entries
        if not entries:
            continue
        first, last = entries[0], entries[-1]
        first_id, last_id = trajectory.run_ids[0], trajectory.run_ids[-1]
        if last.run_seq != latest_seq and total_runs > 1:
            verdict: str = "removed"
            ratio: Optional[float] = None
            old_growth: Optional[str] = last.model
            new_growth: Optional[str] = None
        elif len(entries) == 1:
            if total_runs > 1 and first.run_seq == latest_seq:
                verdict, ratio = "added", None
                old_growth, new_growth = None, first.model
            else:
                continue    # single-run history: nothing to compare yet
        else:
            ratio = _pair_ratio(first, last)
            verdict = classify_pair(first.order, last.order, ratio, tolerance)
            old_growth, new_growth = first.model, last.model
            if verdict == "unchanged":
                continue
        alerts.append(DriftAlert(
            routine=trajectory.routine,
            verdict=verdict,
            old_growth=old_growth,
            new_growth=new_growth,
            cost_ratio=ratio,
            first_run=first_id,
            last_run=last_id,
            runs_observed=len(entries),
            changepoints=len(trajectory.changepoints),
        ))

    def severity_key(alert: DriftAlert) -> Tuple:
        return (SEVERITY.get(alert.verdict, 9), -(alert.cost_ratio or 0.0),
                alert.routine)

    alerts.sort(key=severity_key)
    return alerts
