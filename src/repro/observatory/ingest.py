"""Ingestion: turning pipeline artefacts into observatory run records.

Four sources feed the history store, each reduced to the same
:class:`~repro.observatory.store.RunRecord` shape:

* ``repro-profile 1`` dumps (``repro analyze --dump`` / ``repro merge``)
  and ``repro profile --dump`` TSV point files — the rich case: every
  merged routine's worst-case plot is fitted with
  :func:`repro.curvefit.selection.select_model` into a curve row, the
  top-K routines by total cost also keep their raw plot points;
* farm :class:`~repro.farm.engine.FarmStats` — run-level throughput and
  reliability metrics of a distributed analysis;
* ``telemetry.jsonl`` runs — span totals and counters of one pipeline
  invocation;
* ``repro-bench/1`` envelopes from ``benchmarks/results/`` — scalar
  metrics flattened from the payload (gate ratios included), keyed by
  the envelope's own run identity.

:func:`ingest_path` sniffs the file kind; the ``record_from_*``
builders are the library API (``tools/bench_gate.py`` and tests use
them directly).  Ingestion is idempotent by run id: the default run id
of a file is a digest of its bytes, so re-ingesting the same artefact
is always a no-op.

Two extensions serve the profiling service (:mod:`repro.service`):
v2 **binary traces** ingest too — the farm engine analyses them
server-side (``analyze_file``) and the resulting profile is fitted
like any dump — and :func:`ingest_bytes` ingests an in-memory artefact
(a stdin pipe, a wire upload) by spooling it to a scratch file whose
suffix :func:`artefact_suffix` picks so the sniffing stays identical
to the on-disk path.
"""

from __future__ import annotations

import hashlib
import json
import os
from datetime import datetime, timezone
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..core.profile_data import ProfileDatabase
from ..curvefit.fitting import fit_power_law
from ..curvefit.selection import select_model
from .store import CurveRecord, ObservatoryStore, RunRecord

__all__ = [
    "IngestResult",
    "MIN_FIT_POINTS",
    "record_from_profile_db",
    "record_from_farm_stats",
    "record_from_telemetry",
    "record_from_envelope",
    "record_from_checkpoint",
    "artefact_suffix",
    "ingest_bytes",
    "ingest_checkpoint",
    "ingest_stream_dump",
    "ingest_path",
]

#: a growth class needs at least this many distinct plot points; below
#: it every affine fit degenerates (two points fit every basis exactly)
MIN_FIT_POINTS = 3

#: default number of routines whose raw plot points are stored per run
DEFAULT_TOP_K = 10


class IngestResult(NamedTuple):
    """Outcome of ingesting one source."""

    run_id: str
    source: str          #: profile | trace | farm | telemetry | bench
    ingested: bool       #: False = run_id already present (idempotent skip)
    detail: str


def _digest_run_id(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for block in iter(lambda: stream.read(1 << 16), b""):
            digest.update(block)
    return digest.hexdigest()[:32]


def _mtime_iso(path: str) -> str:
    try:
        mtime = os.path.getmtime(path)
    except OSError:
        return ""
    return datetime.fromtimestamp(mtime, tz=timezone.utc).isoformat()


# -- builders ----------------------------------------------------------------


def record_from_profile_db(
    db: ProfileDatabase,
    run_id: str,
    git_sha: str = "",
    timestamp: str = "",
    scale: float = 0.0,
    source: str = "profile",
    top_k: int = DEFAULT_TOP_K,
) -> RunRecord:
    """Fit every merged routine of ``db`` into curve rows.

    Routines with fewer than :data:`MIN_FIT_POINTS` distinct sizes get
    no curve row (the drift detector treats them as added/removed, the
    same contract as :func:`repro.reporting.diffing.diff_databases`).
    """
    merged = db.merged()
    curves: List[CurveRecord] = []
    events = 0
    for routine in sorted(merged):
        profile = merged[routine]
        events += profile.cost_sum
        points = profile.worst_case_points()
        if len(points) < MIN_FIT_POINTS:
            continue
        selection = select_model(points)
        try:
            exponent: Optional[float] = fit_power_law(points).exponent
        except ValueError:
            exponent = None
        curves.append(CurveRecord(
            routine=routine,
            model=selection.name,
            a=selection.best.a,
            b=selection.best.b,
            r2=selection.best.r2,
            points=len(points),
            max_size=int(points[-1][0]),
            exponent=exponent,
        ))
    top = sorted(merged.values(), key=lambda p: (-p.cost_sum, p.routine))
    raw_points = {
        profile.routine: [(int(size), int(cost))
                          for size, cost in profile.worst_case_points()]
        for profile in top[:top_k]
    }
    return RunRecord(
        run_id=run_id,
        git_sha=git_sha,
        timestamp=timestamp,
        scale=scale,
        source=source,
        events=events,
        metrics={},
        curves=curves,
        points=raw_points,
    )


def record_from_farm_stats(
    stats,
    run_id: str,
    git_sha: str = "",
    timestamp: str = "",
    scale: float = 0.0,
) -> RunRecord:
    """Run-level metrics of one farm analysis (``FarmStats``)."""
    metrics: Dict[str, float] = {
        "farm.jobs": float(stats.jobs),
        "farm.shards": float(len(stats.outcomes)),
        "farm.retries": float(stats.retries),
        "farm.fallbacks": float(stats.fallbacks),
        "farm.pool_failures": float(stats.pool_failures),
        "farm.wall_seconds": float(stats.wall_seconds),
        "farm.events": float(stats.event_count),
    }
    if stats.wall_seconds > 0:
        metrics["farm.events_per_s"] = stats.event_count / stats.wall_seconds
    return RunRecord(
        run_id=run_id,
        git_sha=git_sha,
        timestamp=timestamp,
        scale=scale,
        source="farm",
        events=int(stats.event_count),
        metrics=metrics,
        curves=[],
        points={},
    )


def record_from_telemetry(
    run,
    run_id: str,
    git_sha: str = "",
    timestamp: str = "",
    scale: float = 0.0,
) -> RunRecord:
    """Span totals and counters of one ``TelemetryRun``."""
    metrics: Dict[str, float] = {}
    for name, totals in run.span_totals().items():
        metrics[f"span.{name}.seconds"] = float(totals.get("wall", 0.0))
        metrics[f"span.{name}.calls"] = float(totals.get("calls", 0))
    for entry in run.metrics:
        if entry.get("kind") != "counter":
            continue
        value = entry.get("value")
        if isinstance(value, (int, float)):
            key = f"counter.{entry.get('name', 'counter')}"
            metrics[key] = metrics.get(key, 0.0) + float(value)
    events = int(metrics.get("counter.record.events", 0))
    return RunRecord(
        run_id=run_id,
        git_sha=git_sha,
        timestamp=timestamp,
        scale=scale,
        source="telemetry",
        events=events,
        metrics=metrics,
        curves=[],
        points={},
    )


def _flatten_scalars(payload, prefix: str, into: Dict[str, float]) -> None:
    if isinstance(payload, dict):
        for key, value in payload.items():
            _flatten_scalars(value, f"{prefix}.{key}" if prefix else str(key), into)
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        into[prefix] = float(payload)


def record_from_envelope(envelope: Dict) -> RunRecord:
    """A ``repro-bench/1`` envelope, keyed by its own run identity."""
    metrics: Dict[str, float] = {}
    _flatten_scalars(envelope.get("metrics") or {}, "", metrics)
    bench = envelope.get("bench")
    source = f"bench:{bench}" if bench else "bench"
    return RunRecord(
        run_id=str(envelope.get("run_id") or ""),
        git_sha=str(envelope.get("git_sha") or ""),
        timestamp=str(envelope.get("timestamp") or ""),
        scale=float(envelope.get("scale") or 0.0),
        source=source,
        events=0,
        metrics=metrics,
        curves=[],
        points={},
    )


def record_from_checkpoint(
    manifest: Dict,
    db: ProfileDatabase,
    run_id: Optional[str] = None,
    git_sha: str = "",
    scale: float = 0.0,
    top_k: int = DEFAULT_TOP_K,
) -> RunRecord:
    """A streaming checkpoint as a *partial* run record.

    The run id is stable across checkpoints of one stream
    (``stream-<stream_id>`` by default), so successive ingests
    supersede each other instead of piling up as distinct runs — the
    store keeps exactly one, newest, version of the in-flight run and
    drift detection sees it mid-flight.  The streaming health numbers
    travel as run metrics (``streaming.*``).
    """
    stream_id = str(manifest.get("stream_id") or manifest.get("id") or "")
    if not stream_id:
        raise ValueError("checkpoint manifest carries no stream id")
    record = record_from_profile_db(
        db,
        run_id=run_id or f"stream-{stream_id}",
        git_sha=git_sha,
        timestamp=str(manifest.get("timestamp") or ""),
        scale=scale,
        source="stream",
        top_k=top_k,
    )
    metrics = dict(record.metrics)
    metrics.update({
        "streaming.seq": float(manifest.get("seq") or 0),
        "streaming.events_analyzed": float(manifest.get("events_analyzed") or 0),
        "streaming.events_behind": float(manifest.get("events_behind") or 0),
        "streaming.checkpoint_lag_ms": float(manifest.get("lag_ms") or 0.0),
        "streaming.events_per_s": float(manifest.get("events_per_s") or 0.0),
        "streaming.closed": 1.0 if manifest.get("closed") else 0.0,
    })
    return record._replace(metrics=metrics)


def _ingest_checkpoint_record(
    store: ObservatoryStore, record: RunRecord, manifest: Dict,
) -> IngestResult:
    ingested = store.add_run(record, supersede=True)
    state = "final" if manifest.get("closed") else "partial"
    detail = (f"checkpoint #{manifest.get('seq', 0)} ({state}), "
              f"{len(record.curves)} curve(s)"
              if ingested else
              f"checkpoint #{manifest.get('seq', 0)} already known")
    return IngestResult(record.run_id, "stream", ingested, detail)


def ingest_checkpoint(
    store: ObservatoryStore,
    directory: str,
    run_id: Optional[str] = None,
    git_sha: str = "",
    scale: float = 0.0,
    top_k: int = DEFAULT_TOP_K,
) -> IngestResult:
    """Ingest the newest checkpoint of a stream directory, superseding.

    ``directory`` holds a ``CURRENT.json`` manifest plus the snapshot
    chain (:mod:`repro.streaming.snapshot`).  Safe to call repeatedly
    while the stream is live: each call replaces the previous partial
    run in place; an unchanged checkpoint is an idempotent no-op.
    """
    from ..streaming.snapshot import load_checkpoint

    manifest, db = load_checkpoint(directory)
    record = record_from_checkpoint(manifest, db, run_id=run_id,
                                    git_sha=git_sha, scale=scale, top_k=top_k)
    return _ingest_checkpoint_record(store, record, manifest)


def ingest_stream_dump(
    store: ObservatoryStore,
    data: bytes,
    stream_meta: Dict,
    run_id: Optional[str] = None,
    git_sha: str = "",
    scale: float = 0.0,
    top_k: int = DEFAULT_TOP_K,
) -> IngestResult:
    """Ingest a reassembled checkpoint dump shipped over the wire.

    The service's ``put_stream`` op delivers the full ``repro-profile
    1`` bytes plus the manifest fields as ``stream_meta`` — same
    superseding semantics as :func:`ingest_checkpoint`, without
    touching the uploader's filesystem.
    """
    import io

    from ..farm import load_profile

    db = load_profile(io.StringIO(data.decode("utf-8")))
    record = record_from_checkpoint(stream_meta, db, run_id=run_id,
                                    git_sha=git_sha, scale=scale, top_k=top_k)
    return _ingest_checkpoint_record(store, record, stream_meta)


# -- file sniffing -----------------------------------------------------------


def _looks_like_telemetry(path: str) -> bool:
    if os.path.basename(path) == "telemetry.jsonl" or os.path.isdir(path):
        return True
    if not path.endswith(".jsonl"):
        return False
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as stream:
            first = stream.readline().strip()
        return bool(first) and json.loads(first).get("type") in (
            "meta", "span", "heartbeat", "metrics", "event")
    except (OSError, ValueError):
        return False


def _load_points_db(path: str) -> ProfileDatabase:
    from ..reporting.report import parse_points

    with open(path, "r", encoding="utf-8") as stream:
        return parse_points(stream)


def ingest_path(
    store: ObservatoryStore,
    path: str,
    run_id: Optional[str] = None,
    git_sha: str = "",
    timestamp: str = "",
    scale: float = 0.0,
    top_k: int = DEFAULT_TOP_K,
) -> IngestResult:
    """Sniff ``path`` and ingest it; see the module docstring.

    Accepts a ``repro-profile 1`` dump, a ``repro profile --dump`` TSV
    point file, a v2 binary trace (analysed inline through the farm
    engine first), a ``telemetry.jsonl`` file (or a run directory
    holding one), a ``repro-bench/1`` JSON envelope, or a streaming
    checkpoint directory (holding ``CURRENT.json``; ingested with
    superseding semantics — see :func:`ingest_checkpoint`).  Raises
    ``ValueError`` on anything else, ``OSError`` on unreadable paths.
    """
    from ..farm import is_binary_trace, is_profile_dump, load_profile
    from ..streaming.snapshot import MANIFEST_NAME

    # Checkpoint directories first: a directory would otherwise sniff
    # as a telemetry run, and CURRENT.json as a bench envelope.
    checkpoint_dir: Optional[str] = None
    if os.path.isdir(path) and os.path.exists(os.path.join(path, MANIFEST_NAME)):
        checkpoint_dir = path
    elif os.path.basename(path) == MANIFEST_NAME and os.path.exists(path):
        checkpoint_dir = os.path.dirname(path) or "."
    if checkpoint_dir is not None:
        return ingest_checkpoint(store, checkpoint_dir, run_id=run_id,
                                 git_sha=git_sha, scale=scale, top_k=top_k)

    if not os.path.isdir(path) and is_binary_trace(path):
        from ..farm import analyze_file

        result = analyze_file(path, jobs=1)
        record = record_from_profile_db(
            result.db,
            run_id=run_id or _digest_run_id(path),
            git_sha=git_sha,
            timestamp=timestamp or _mtime_iso(path),
            scale=scale,
            source="trace",
            top_k=top_k,
        )
    elif _looks_like_telemetry(path):
        from ..telemetry import TelemetryRun, resolve_log_path

        log_path = resolve_log_path(path) if os.path.isdir(path) else path
        run = TelemetryRun.load(path)
        record = record_from_telemetry(
            run,
            run_id=run_id or _digest_run_id(log_path),
            git_sha=git_sha,
            timestamp=timestamp or _mtime_iso(log_path),
            scale=scale,
        )
    elif is_profile_dump(path):
        with open(path, "r", encoding="utf-8") as stream:
            db = load_profile(stream)
        record = record_from_profile_db(
            db,
            run_id=run_id or _digest_run_id(path),
            git_sha=git_sha,
            timestamp=timestamp or _mtime_iso(path),
            scale=scale,
            top_k=top_k,
        )
    elif path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as stream:
            envelope = json.load(stream)
        if envelope.get("schema") != "repro-bench/1":
            raise ValueError(f"{path}: not a repro-bench/1 envelope")
        record = record_from_envelope(envelope)
        if run_id:
            record = record._replace(run_id=run_id)
        if not record.run_id:
            record = record._replace(run_id=_digest_run_id(path))
        if git_sha:
            record = record._replace(git_sha=git_sha)
    else:
        try:
            db = _load_points_db(path)
        except (ValueError, OSError) as error:
            raise ValueError(
                f"{path}: not a profile dump, point dump, telemetry run or "
                f"bench envelope ({error})") from None
        record = record_from_profile_db(
            db,
            run_id=run_id or _digest_run_id(path),
            git_sha=git_sha,
            timestamp=timestamp or _mtime_iso(path),
            scale=scale,
            top_k=top_k,
        )
    ingested = store.add_run(record)
    detail = (f"{len(record.curves)} curve(s), "
              f"{sum(len(p) for p in record.points.values())} point(s)"
              if record.curves or record.points
              else f"{len(record.metrics)} metric(s)")
    return IngestResult(record.run_id, record.source, ingested, detail)


# -- in-memory artefacts -----------------------------------------------------


def artefact_suffix(data: bytes) -> str:
    """The spool-file suffix under which ``data`` sniffs like itself.

    The sniffers above look at file *content* except for two cases
    that go by name: ``telemetry.jsonl`` logs (``.jsonl``) and
    ``repro-bench/1`` envelopes (``.json``).  Picking the suffix from
    the bytes lets :func:`ingest_bytes` (stdin pipes, wire uploads)
    reuse :func:`ingest_path` unchanged.
    """
    from ..farm.binfmt import BINARY_MAGIC

    if data.startswith(BINARY_MAGIC):
        return ".rpt2"
    head = data[:4096].decode("utf-8", errors="replace")
    first = head.split("\n", 1)[0].strip()
    if first:
        try:
            record = json.loads(first)
        except ValueError:
            record = None
        if isinstance(record, dict):
            if record.get("type") in ("meta", "span", "heartbeat",
                                      "metrics", "event"):
                return ".jsonl"
            return ".json"
    return ".profile"


def ingest_bytes(
    store: ObservatoryStore,
    data: bytes,
    run_id: Optional[str] = None,
    git_sha: str = "",
    timestamp: str = "",
    scale: float = 0.0,
    top_k: int = DEFAULT_TOP_K,
) -> IngestResult:
    """Ingest an in-memory artefact (same sniffing as :func:`ingest_path`).

    Spools ``data`` to a scratch file and delegates; the default run id
    is the digest of ``data`` — identical to what ingesting the same
    bytes from a file would assign, so online (wire/stdin) and offline
    (path) ingestion of one artefact are idempotent against each other.
    No timestamp is inferred (a spool file's mtime is meaningless);
    pass the artefact's own ``timestamp`` when ordering matters.
    """
    import tempfile

    handle, path = tempfile.mkstemp(prefix="repro-ingest-",
                                    suffix=artefact_suffix(data))
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        return ingest_path(
            store, path,
            run_id=run_id,
            git_sha=git_sha,
            timestamp=timestamp or "-",
            scale=scale,
            top_k=top_k,
        )
    finally:
        os.unlink(path)
