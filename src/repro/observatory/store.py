"""The profile-history store: minidb tables over an append-only log.

One profiling run is one observation of the system's cost functions;
the observatory keeps a *history* of them so growth-rate drift across
commits becomes visible (see :mod:`repro.observatory.drift`).  Storage
is split along the classic WAL/engine line:

* ``history.jsonl`` — the durable medium: one self-describing JSON
  record per ingested run, append-only and crash-tolerant exactly like
  ``telemetry.jsonl`` (a truncated trailing line is ignored).  Strings
  live only here.
* the :mod:`repro.minidb` engine — the live relational view, rebuilt
  from the log at open.  The same mini database the paper profiles as
  its MySQL case study here serves as real infrastructure: runs,
  fitted curves and raw plot points are rows in heap tables, queried
  through its SQL layer with a hash index per hot lookup column.

minidb cells hold integers, so strings are interned per store instance
(ids are assigned during replay and never persisted) and fractional
values are stored in fixed-point micro-units (``×1e6``).

Schema (one row per line of ``CREATE TABLE``)::

    runs    (seq, run_id, git_sha, ts, scale_u, source, routines, events)
    curves  (run, routine, model, a_u, b_u, r2_u, npoints, max_size, exp_u)
    points  (run, routine, size, cost)
    metrics (run, name, value_u)

``runs.seq`` is the ingest ordinal; run ordering everywhere else is by
``(timestamp, seq)``.  ``curves`` carries one fitted-curve row per
fittable routine per run — the model name plus its ``a``/``b``
coefficients (``cost ≈ a·g(n) + b``), so predicted costs at any size
can be recomputed without refitting — and the free power-law exponent
for the dashboard sparklines.  ``points`` keeps the raw worst-case
cost plot of the top-K routines by total cost.
"""

from __future__ import annotations

import contextlib
import json
import os
from datetime import datetime, timezone
from typing import Dict, List, NamedTuple, Optional, Tuple

try:                                    # POSIX advisory file locks
    import fcntl
except ImportError:                     # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from ..curvefit.models import model_by_name
from ..minidb import Database
from ..pytrace.api import TraceSession

__all__ = [
    "STORE_SCHEMA",
    "HISTORY_FILENAME",
    "LOCK_FILENAME",
    "CurveRecord",
    "RunRecord",
    "RunInfo",
    "CurveRow",
    "ObservatoryStore",
]

STORE_SCHEMA = "repro-observatory/1"
HISTORY_FILENAME = "history.jsonl"
#: advisory lock serialising appends against gc compaction (see
#: :meth:`ObservatoryStore._locked`)
LOCK_FILENAME = "history.lock"

#: fixed-point scale for fractional columns (micro-units)
_FP = 1_000_000
#: ``exp_u`` sentinel for "no power-law exponent available"
_NO_EXP = -(10 ** 12)


def _fp(value: float) -> int:
    return int(round(float(value) * _FP))


def _unfp(value: int) -> float:
    return value / _FP


def _parse_ts(timestamp: Optional[str]) -> int:
    """ISO-8601 → unix seconds (0 when absent or unparseable)."""
    if not timestamp:
        return 0
    try:
        parsed = datetime.fromisoformat(str(timestamp).replace("Z", "+00:00"))
    except ValueError:
        return 0
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return int(parsed.timestamp())


class CurveRecord(NamedTuple):
    """One routine's fitted curve in one run (ingest-side, strings/floats)."""

    routine: str
    model: str            #: growth-class name from curvefit.selection
    a: float
    b: float
    r2: float
    points: int           #: distinct plot points the fit saw
    max_size: int         #: largest input size observed
    exponent: Optional[float]   #: free power-law exponent, if fittable


class RunRecord(NamedTuple):
    """One ingested run, as appended to ``history.jsonl``."""

    run_id: str
    git_sha: str
    timestamp: str        #: ISO-8601
    scale: float
    source: str           #: profile | farm | telemetry | bench
    events: int
    metrics: Dict[str, float]
    curves: List[CurveRecord]
    #: routine -> raw worst-case plot ``[(size, cost), …]`` (top-K only)
    points: Dict[str, List[Tuple[int, int]]]


class RunInfo(NamedTuple):
    """One run as read back from the ``runs`` table."""

    seq: int
    run_id: str
    git_sha: str
    timestamp: int        #: unix seconds
    scale: float
    source: str
    routines: int
    events: int


class CurveRow(NamedTuple):
    """One fitted-curve row as read back from the ``curves`` table."""

    run_seq: int
    routine: str
    model: str
    a: float
    b: float
    r2: float
    points: int
    max_size: int
    exponent: Optional[float]

    @property
    def order(self) -> int:
        """Rank of the growth class inside the default model family."""
        return model_by_name(self.model).order

    def predict(self, n: float) -> float:
        """Predicted cost at input size ``n`` from the stored coefficients."""
        return model_by_name(self.model).evaluate(n, self.a, self.b)


class ObservatoryStore:
    """Persistent run history over a minidb engine (see module docstring).

    Usage::

        with ObservatoryStore(directory) as store:
            store.add_run(record)
            for info in store.runs(): ...
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.path = os.path.join(root, HISTORY_FILENAME)
        self._names: List[str] = []
        self._ids: Dict[str, int] = {}
        self._run_seq: Dict[str, int] = {}     # run_id -> seq ordinal
        self._records: List[RunRecord] = []    # replayed log, in seq order
        self._engine = self._new_engine()
        self._replay()

    # -- engine ------------------------------------------------------------

    def _new_engine(self) -> Database:
        # An untraced session: the observatory *uses* minidb, it does not
        # profile it.  Page/frame sizing trades tracked-cell granularity
        # for capacity: 9 columns max -> 8 curve rows per 81-word page,
        # 4096 pages per table extent.
        engine = Database(
            TraceSession(tools=None),
            page_size=81,
            pool_frames=128,
            ring_slots=64,
            record_width=10,
        )
        engine.execute(
            "CREATE TABLE runs (seq, run_id, git_sha, ts, scale_u, source, "
            "routines, events)")
        engine.execute(
            "CREATE TABLE curves (run, routine, model, a_u, b_u, r2_u, "
            "npoints, max_size, exp_u)")
        engine.execute("CREATE TABLE points (run, routine, size, cost)")
        engine.execute("CREATE TABLE metrics (run, name, value_u)")
        engine.execute("CREATE INDEX ON runs (run_id)")
        engine.execute("CREATE INDEX ON curves (routine)")
        engine.execute("CREATE INDEX ON points (run)")
        engine.execute("CREATE INDEX ON metrics (run)")
        return engine

    def _intern(self, name: str) -> int:
        interned = self._ids.get(name)
        if interned is None:
            interned = len(self._names)
            self._names.append(name)
            self._ids[name] = interned
        return interned

    def _name(self, interned: int) -> str:
        return self._names[interned]

    def _insert(self, table: str, values: List[int]) -> None:
        rendered = ", ".join(str(int(value)) for value in values)
        self._engine.execute(f"INSERT INTO {table} VALUES ({rendered})")
        # No background flusher: drain the change-buffer ring eagerly so
        # bulk ingestion never blocks on a full ring.
        self._engine.flush_now()

    # -- log ---------------------------------------------------------------

    @contextlib.contextmanager
    def _locked(self):
        """Hold the store's advisory file lock (``history.lock``).

        ``gc`` swaps ``history.jsonl`` out from under concurrent
        writers (atomic-replace compaction); an append racing the swap
        would land on the *old* inode and be lost, and a reader could
        observe a half-rebuilt engine.  Every append and the whole gc
        critical section therefore take an exclusive ``flock`` on a
        sidecar lock file — advisory (cooperating processes only), so
        plain reads of the JSONL stay lock-free.  On platforms without
        ``fcntl`` the lock degrades to a no-op.
        """
        if fcntl is None:               # pragma: no cover - non-POSIX
            yield
            return
        with open(os.path.join(self.root, LOCK_FILENAME), "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _replay(self) -> None:
        if not os.path.exists(self.path):
            with open(self.path, "w", encoding="utf-8") as stream:
                stream.write(json.dumps({"type": "meta", "schema": STORE_SCHEMA}) + "\n")
            return
        # Resolve supersessions before touching the engine: a streaming
        # run appends one log record per checkpoint, all sharing one
        # run_id, and only the newest version may be materialised (at
        # its original position — a stream keeps its place in history).
        resolved: List[RunRecord] = []
        index: Dict[str, int] = {}
        with open(self.path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue    # truncated trailing line (crash mid-append)
                if record.get("type") != "run":
                    continue
                run = _record_from_json(record)
                seq = index.get(run.run_id)
                if seq is None:
                    index[run.run_id] = len(resolved)
                    resolved.append(run)
                elif record.get("supersede"):
                    resolved[seq] = run
                # duplicate non-superseding append: first write wins,
                # matching add_run's idempotency
        for run in resolved:
            self._apply(run)

    def _append(self, record: RunRecord, supersede: bool = False) -> None:
        payload = _record_to_json(record)
        if supersede:
            payload["supersede"] = True
        with self._locked():
            with open(self.path, "a", encoding="utf-8") as stream:
                stream.write(json.dumps(payload, sort_keys=True) + "\n")
                stream.flush()
                os.fsync(stream.fileno())

    # -- writes ------------------------------------------------------------

    def has_run(self, run_id: str) -> bool:
        return run_id in self._run_seq

    def add_run(self, record: RunRecord, supersede: bool = False) -> bool:
        """Ingest one run; False (and no effect) when run_id is present.

        Idempotency is by ``run_id`` alone — re-ingesting the same dump
        (or a re-upload of the same envelope) is a no-op.

        ``supersede=True`` is the streaming-checkpoint contract: a
        known ``run_id`` is *replaced in place* (same position in run
        history — later checkpoints of one run are not separate runs)
        and the replacement is appended to the log with a
        ``supersede`` marker so replay converges to the newest
        version.  Re-ingesting a byte-identical checkpoint stays a
        no-op, keeping superseding ingestion idempotent too.
        """
        if self.has_run(record.run_id):
            if not supersede:
                return False
            seq = self._run_seq[record.run_id]
            if self._records[seq] == record:
                return False    # identical checkpoint re-ingested
            self._append(record, supersede=True)
            records = list(self._records)
            records[seq] = record
            self._rebuild(records)
            return True
        self._append(record, supersede=supersede)
        self._apply(record)
        return True

    def _rebuild(self, records: List[RunRecord]) -> None:
        """Re-materialise the engine from an explicit record list."""
        self._names = []
        self._ids = {}
        self._run_seq = {}
        self._records = []
        self._engine = self._new_engine()
        for record in records:
            self._apply(record)

    def _apply(self, record: RunRecord) -> None:
        seq = len(self._records)
        self._records.append(record)
        self._run_seq[record.run_id] = seq
        self._insert("runs", [
            seq,
            self._intern(record.run_id),
            self._intern(record.git_sha or ""),
            _parse_ts(record.timestamp),
            _fp(record.scale or 0.0),
            self._intern(record.source or ""),
            len({curve.routine for curve in record.curves} | set(record.points)),
            int(record.events or 0),
        ])
        for curve in record.curves:
            exponent = _NO_EXP if curve.exponent is None else _fp(curve.exponent)
            self._insert("curves", [
                seq,
                self._intern(curve.routine),
                self._intern(curve.model),
                _fp(curve.a),
                _fp(curve.b),
                _fp(curve.r2),
                int(curve.points),
                int(curve.max_size),
                exponent,
            ])
        for routine, plot in record.points.items():
            routine_id = self._intern(routine)
            for size, cost in plot:
                self._insert("points", [seq, routine_id, int(size), int(cost)])
        for name, value in record.metrics.items():
            self._insert("metrics", [seq, self._intern(name), _fp(value)])

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def runs(self) -> List[RunInfo]:
        """Every run, ordered by (timestamp, ingest ordinal)."""
        rows = self._engine.execute("SELECT * FROM runs")
        infos = [
            RunInfo(
                seq=row[0],
                run_id=self._name(row[1]),
                git_sha=self._name(row[2]),
                timestamp=row[3],
                scale=_unfp(row[4]),
                source=self._name(row[5]),
                routines=row[6],
                events=row[7],
            )
            for row in rows
        ]
        infos.sort(key=lambda info: (info.timestamp, info.seq))
        return infos

    def run_order(self) -> Dict[int, int]:
        """Map run seq -> position in the (timestamp, seq) ordering."""
        return {info.seq: position for position, info in enumerate(self.runs())}

    def routines(self) -> List[str]:
        """Sorted names of every routine with at least one curve row."""
        rows = self._engine.execute("SELECT * FROM curves")
        return sorted({self._name(row[1]) for row in rows})

    def _curve_row(self, row: List[int]) -> CurveRow:
        exponent = None if row[8] == _NO_EXP else _unfp(row[8])
        return CurveRow(
            run_seq=row[0],
            routine=self._name(row[1]),
            model=self._name(row[2]),
            a=_unfp(row[3]),
            b=_unfp(row[4]),
            r2=_unfp(row[5]),
            points=row[6],
            max_size=row[7],
            exponent=exponent,
        )

    def curve_trajectory(self, routine: str) -> List[CurveRow]:
        """The routine's fitted curves across runs, in run order."""
        routine_id = self._ids.get(routine)
        if routine_id is None:
            return []
        rows = self._engine.execute(
            f"SELECT * FROM curves WHERE routine = {routine_id}")
        order = self.run_order()
        curves = [self._curve_row(row) for row in rows]
        curves.sort(key=lambda curve: order.get(curve.run_seq, -1))
        return curves

    def curves_for_run(self, seq: int) -> List[CurveRow]:
        rows = self._engine.execute(f"SELECT * FROM curves WHERE run = {seq}")
        return [self._curve_row(row) for row in rows]

    def points_for(self, seq: int, routine: str) -> List[Tuple[int, int]]:
        """Raw worst-case plot of one routine in one run (top-K only)."""
        routine_id = self._ids.get(routine)
        if routine_id is None:
            return []
        rows = self._engine.execute(f"SELECT * FROM points WHERE run = {seq}")
        return sorted((row[2], row[3]) for row in rows if row[1] == routine_id)

    def metrics_for(self, seq: int) -> Dict[str, float]:
        rows = self._engine.execute(f"SELECT * FROM metrics WHERE run = {seq}")
        return {self._name(row[1]): _unfp(row[2]) for row in rows}

    # -- maintenance -------------------------------------------------------

    def gc(self, keep: int) -> int:
        """Keep only the newest ``keep`` runs; returns how many were dropped.

        Compacts ``history.jsonl`` (atomic replace) and rebuilds the
        engine from the survivors.  The whole critical section holds
        the store's advisory lock, so a concurrent ingest (another
        cooperating process, or the profiling service's workers) can
        never append to the about-to-be-replaced log or observe the
        half-rebuilt engine.
        """
        if keep < 0:
            raise ValueError("keep must be >= 0")
        with self._locked():
            ordered = self.runs()
            victims = ordered[:-keep] if keep else ordered
            if not victims:
                return 0
            victim_seqs = {info.seq for info in victims}
            survivors = [record for seq, record in enumerate(self._records)
                         if seq not in victim_seqs]
            scratch = self.path + ".compact"
            with open(scratch, "w", encoding="utf-8") as stream:
                stream.write(json.dumps({"type": "meta", "schema": STORE_SCHEMA}) + "\n")
                for record in survivors:
                    stream.write(json.dumps(_record_to_json(record), sort_keys=True) + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(scratch, self.path)
            self._rebuild(survivors)
        return len(victims)

    def close(self) -> None:
        """Release the engine (the log is already durable)."""
        self._engine = None  # type: ignore[assignment]

    def __enter__(self) -> "ObservatoryStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- log (de)serialisation --------------------------------------------------


def _record_to_json(record: RunRecord) -> Dict:
    return {
        "type": "run",
        "schema": STORE_SCHEMA,
        "run_id": record.run_id,
        "git_sha": record.git_sha,
        "timestamp": record.timestamp,
        "scale": record.scale,
        "source": record.source,
        "events": record.events,
        "metrics": dict(record.metrics),
        "curves": [
            {
                "routine": curve.routine,
                "model": curve.model,
                "a": curve.a,
                "b": curve.b,
                "r2": curve.r2,
                "points": curve.points,
                "max_size": curve.max_size,
                "exponent": curve.exponent,
            }
            for curve in record.curves
        ],
        "points": {routine: [[size, cost] for size, cost in plot]
                   for routine, plot in record.points.items()},
    }


def _record_from_json(payload: Dict) -> RunRecord:
    curves = [
        CurveRecord(
            routine=str(curve["routine"]),
            model=str(curve["model"]),
            a=float(curve["a"]),
            b=float(curve["b"]),
            r2=float(curve["r2"]),
            points=int(curve["points"]),
            max_size=int(curve["max_size"]),
            exponent=None if curve.get("exponent") is None
            else float(curve["exponent"]),
        )
        for curve in payload.get("curves", [])
    ]
    points = {
        str(routine): [(int(size), int(cost)) for size, cost in plot]
        for routine, plot in (payload.get("points") or {}).items()
    }
    metrics = {str(name): float(value)
               for name, value in (payload.get("metrics") or {}).items()
               if isinstance(value, (int, float))}
    return RunRecord(
        run_id=str(payload["run_id"]),
        git_sha=str(payload.get("git_sha") or ""),
        timestamp=str(payload.get("timestamp") or ""),
        scale=float(payload.get("scale") or 0.0),
        source=str(payload.get("source") or ""),
        events=int(payload.get("events") or 0),
        metrics=metrics,
        curves=curves,
        points=points,
    )
