"""Profile observatory: persistent run history and growth-rate drift.

A single input-sensitive profile names each routine's cost *function*;
two profiles diff into asymptotic regressions
(:mod:`repro.reporting.diffing`); this package watches a *sequence* of
runs, which is what an operator of a long-lived system actually has:

* :mod:`repro.observatory.store` — the persistent history store: an
  append-only ``history.jsonl`` replayed into :mod:`repro.minidb`
  tables (runs, fitted curves, raw plot points, run metrics);
* :mod:`repro.observatory.ingest` — turns ``repro-profile 1`` dumps,
  TSV point dumps, farm ``FarmStats``, ``telemetry.jsonl`` runs and
  ``repro-bench/1`` envelopes into store records, idempotently by
  run id;
* :mod:`repro.observatory.drift` — per-routine growth-class
  trajectories, changepoint flagging and severity-ranked alerts;
* :mod:`repro.observatory.dashboards` — the ASCII and HTML dashboards
  behind ``repro observe report``.

CLI: ``repro observe {ingest,report,alerts,gc}`` (see
docs/OBSERVATORY.md).  The observatory only ever *reads* pipeline
artefacts — profiles stay bit-identical whether it is enabled or
absent.
"""

from .dashboards import (
    render_alert_feed,
    render_observatory_html,
    render_observatory_report,
)
from .drift import Changepoint, DriftAlert, RoutineTrajectory, detect_drift, trajectories
from .ingest import (
    IngestResult,
    artefact_suffix,
    ingest_bytes,
    ingest_checkpoint,
    ingest_path,
    ingest_stream_dump,
    record_from_checkpoint,
    record_from_envelope,
    record_from_farm_stats,
    record_from_profile_db,
    record_from_telemetry,
)
from .store import (
    HISTORY_FILENAME,
    LOCK_FILENAME,
    STORE_SCHEMA,
    CurveRecord,
    CurveRow,
    ObservatoryStore,
    RunInfo,
    RunRecord,
)

__all__ = [
    "render_alert_feed",
    "render_observatory_html",
    "render_observatory_report",
    "Changepoint",
    "DriftAlert",
    "RoutineTrajectory",
    "detect_drift",
    "trajectories",
    "IngestResult",
    "artefact_suffix",
    "ingest_bytes",
    "ingest_checkpoint",
    "ingest_path",
    "ingest_stream_dump",
    "record_from_checkpoint",
    "record_from_envelope",
    "record_from_farm_stats",
    "record_from_profile_db",
    "record_from_telemetry",
    "HISTORY_FILENAME",
    "LOCK_FILENAME",
    "STORE_SCHEMA",
    "CurveRecord",
    "CurveRow",
    "ObservatoryStore",
    "RunInfo",
    "RunRecord",
]
