#!/usr/bin/env python3
"""Profile the mini relational database under a mysqlslap-style load.

Reproduces the paper's MySQL case studies in one session:

* ``mysql_select`` — rms saturates at the buffer pool while trms tracks
  the true table size (Figure 4's misleading-bottleneck effect);
* ``buf_flush_buffered_writes`` — the background flusher's batches are
  thread-induced input, and its cost grows super-linearly in them;
* ``send_eof`` — workload characterisation enriched by the server
  status counters every connection updates.

Run:  python examples/minidb_profiling.py
"""

from repro.core import EventBus, RmsProfiler, TrmsProfiler, induced_split
from repro.minidb import Database, minislap
from repro.pytrace import TraceSession
from repro.reporting import render_report, scatter, table


def main():
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([rms, trms]))

    with session:
        database = Database(session, page_size=9, pool_frames=4, ring_slots=8)
        report = minislap(session, database, clients=4, queries_per_client=12,
                          insert_ratio=0.5, preload_rows=16)

    print(f"minislap: {report.queries} queries, {report.rows_inserted} inserts, "
          f"{report.rows_received} rows received, "
          f"{report.records_flushed} change records in {report.flush_calls} flushes\n")

    print(render_report(trms.db, title="trms profile (merged across threads)"))

    thread_pct, external_pct = induced_split(trms.db)
    print(f"induced input split: {thread_pct:.1f}% thread / {external_pct:.1f}% external\n")

    rows = []
    for routine in ("mysql_select", "buf_flush_buffered_writes", "send_eof"):
        rms_profile = rms.db.merged().get(routine)
        trms_profile = trms.db.merged().get(routine)
        if trms_profile is None:
            continue
        rows.append([
            routine,
            trms_profile.calls,
            rms_profile.distinct_sizes,
            trms_profile.distinct_sizes,
            max(size for size in rms_profile.points),
            max(size for size in trms_profile.points),
        ])
    print(table(
        ["routine", "calls", "rms points", "trms points", "max rms", "max trms"],
        rows, title="Case-study routines",
    ))

    select_points = trms.db.merged()["mysql_select"].worst_case_points()
    print(scatter(select_points, title="mysql_select — worst-case cost vs trms",
                  xlabel="trms", ylabel="cost"))


if __name__ == "__main__":
    main()
