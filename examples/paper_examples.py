#!/usr/bin/env python3
"""The paper's synthetic examples (Figures 1a, 1b, 2, 3) on the VM.

Each scenario runs once under both profilers; the table shows why the
sequential rms mis-measures multithreaded and streaming input while the
trms gets it right.

Run:  python examples/paper_examples.py
"""

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.reporting import table
from repro.vm import programs

ITEMS = 16


def profile(scenario):
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    scenario.run(tools=EventBus([rms, trms]))
    return rms, trms


def record(profiler, routine):
    return [a for a in profiler.db.activations if a.routine == routine][0]


def main():
    rows = []

    rms, trms = profile(programs.figure_1a())
    entry = record(trms, "f")
    rows.append(["1a", "f", record(rms, "f").size, entry.size,
                 entry.induced_thread, entry.induced_external,
                 "2nd read follows a foreign write"])

    rms, trms = profile(programs.figure_1b())
    for routine in ("f", "h"):
        entry = record(trms, routine)
        rows.append(["1b", routine, record(rms, routine).size, entry.size,
                     entry.induced_thread, entry.induced_external,
                     "induced read sits in child h"])

    rms, trms = profile(programs.producer_consumer(ITEMS))
    entry = record(trms, "consumer")
    rows.append(["2", "consumer", record(rms, "consumer").size, entry.size,
                 entry.induced_thread, entry.induced_external,
                 f"{ITEMS} values through one cell"])

    rms, trms = profile(programs.buffered_read(ITEMS))
    entry = record(trms, "externalRead")
    rows.append(["3", "externalRead", record(rms, "externalRead").size, entry.size,
                 entry.induced_thread, entry.induced_external,
                 f"{ITEMS} kernel refills of b[0]"])

    print(table(
        ["figure", "routine", "rms", "trms", "thread-induced", "external", "why"],
        rows,
        title="Paper examples — rms vs trms",
    ))


if __name__ == "__main__":
    main()
