#!/usr/bin/env python3
"""Run one workload under every analysis tool on a shared event bus.

One execution of the ``canneal``-like kernel feeds, simultaneously:
aprof-rms, aprof-trms, memcheck, callgrind and helgrind — the same
single-instrumentation/many-analyses structure as the paper's Valgrind
evaluation.  Then a racy variant shows helgrind earning its keep.

Run:  python examples/tool_comparison.py
"""

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.reporting import table
from repro.tools import Callgrind, Helgrind, Memcheck
from repro.vm import programs
from repro.workloads import kernels


def main():
    rms = RmsProfiler()
    trms = TrmsProfiler()
    memcheck = Memcheck()
    callgrind = Callgrind()
    helgrind = Helgrind()
    bus = EventBus([rms, trms, memcheck, callgrind, helgrind])

    scenario = kernels.gather_scatter(3, 48, 40, locked=True, name="canneal")
    scenario.run(tools=bus, timeslice=7)

    rows = [
        ["aprof-rms", f"{len(rms.db)} profiles", f"{rms.space_bytes()} B"],
        ["aprof-trms",
         f"{trms.db.total_induced()} induced (thread, external)",
         f"{trms.space_bytes()} B"],
        ["memcheck", f"{len(memcheck.report()['errors'])} errors",
         f"{memcheck.space_bytes()} B"],
        ["callgrind",
         f"{len(callgrind.report()['edges'])} call edges, "
         f"top: {callgrind.top_functions(1)[0][0]}",
         f"{callgrind.space_bytes()} B"],
        ["helgrind", f"{len(helgrind.report()['races'])} races",
         f"{helgrind.space_bytes()} B"],
    ]
    print(table(["tool", "findings", "analysis state"], rows,
                title="One execution, five analyses (locked canneal kernel)"))

    # now a deliberately racy program: helgrind must speak up
    helgrind_racy = Helgrind()
    programs.racy_increment(threads=3, rounds=6).run(
        tools=EventBus([helgrind_racy]), timeslice=2
    )
    races = helgrind_racy.report()["races"]
    print(f"racy_increment: helgrind found {len(races)} racy address(es): "
          f"{[race.addr for race in races]}")
    assert races, "the planted race must be detected"


if __name__ == "__main__":
    main()
