#!/usr/bin/env python3
"""Characterise deployed workloads, the Section 3 way.

The paper's point about workload plots: beyond cost functions, the
per-size activation counts characterise *what the deployed system
actually does*.  We run minislap twice against the same schema — a
read-heavy mix and a write-heavy mix — and read the difference straight
off the profiles: where the activations concentrate, how much input is
induced, and which routine carries each mix.

Run:  python examples/workload_characterization.py
"""

from repro.core import EventBus, TrmsProfiler, induced_split
from repro.minidb import minislap
from repro.pytrace import TraceSession
from repro.reporting import scatter, table


def run_mix(insert_ratio, seed):
    trms = TrmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([trms]))
    with session:
        report = minislap(session, clients=4, queries_per_client=14,
                          insert_ratio=insert_ratio, preload_rows=12, seed=seed)
    return trms.db, report


def main():
    read_db, read_report = run_mix(insert_ratio=0.15, seed=7)
    write_db, write_report = run_mix(insert_ratio=0.85, seed=7)

    rows = []
    for label, db, report in (
        ("read-heavy (15% inserts)", read_db, read_report),
        ("write-heavy (85% inserts)", write_db, write_report),
    ):
        merged = db.merged()
        selects = merged.get("mysql_select")
        flushes = merged.get("buf_flush_buffered_writes")
        thread_pct, external_pct = induced_split(db)
        rows.append([
            label,
            report.rows_inserted,
            report.rows_received,
            selects.calls if selects else 0,
            flushes.calls if flushes else 0,
            f"{thread_pct:.0f}%/{external_pct:.0f}%",
        ])
    print(table(
        ["mix", "rows inserted", "rows received", "selects", "flushes",
         "induced thread/external"],
        rows, title="Two deployments of the same engine, characterised",
    ))

    select_profile = read_db.merged().get("mysql_select")
    if select_profile:
        print(scatter(
            select_profile.workload_points(),
            title="read-heavy mix — mysql_select workload plot "
                  "(activations per input size)",
            xlabel="trms", ylabel="activations",
        ))
    flush_profile = write_db.merged().get("buf_flush_buffered_writes")
    if flush_profile:
        print(scatter(
            flush_profile.workload_points(),
            title="write-heavy mix — buf_flush workload plot",
            xlabel="trms", ylabel="activations",
        ))

    print("Reading: the read-heavy deployment lives in mysql_select with "
          "external (disk) input;\nthe write-heavy one shifts activations "
          "and induced input into the flusher.")


if __name__ == "__main__":
    main()
