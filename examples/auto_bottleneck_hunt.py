#!/usr/bin/env python3
"""Hunt an asymptotic bottleneck in undecorated code, automatically.

A small "application" with a hidden scaling bug: its deduplication step
uses a linear membership scan inside a loop (accidentally quadratic — a
classic).  No function is decorated; :class:`AutoTracer` hooks CPython's
profile callback, calling contexts separate the two users of the shared
``contains`` helper, and the bottleneck ranking names the offender.

Run:  python examples/auto_bottleneck_hunt.py
"""

from repro.core import EventBus, RmsProfiler, contexts_of
from repro.pytrace import AutoTracer, TraceSession
from repro.reporting import render_bottlenecks, table


# --- the "application": plain functions, no instrumentation ----------------

def contains(items, count, value):
    for index in range(count):
        if items[index] == value:
            return True
    return False


def dedupe(source, target):
    """Accidentally quadratic: a linear scan per appended element."""
    count = 0
    for index in range(len(source)):
        value = source[index]
        if not contains(target, count, value):
            target[count] = value
            count += 1
    return count


def checksum(data):
    """Honest linear pass (it also calls contains — once)."""
    total = 0
    for index in range(len(data)):
        total += data[index]
    if contains(data, min(4, len(data)), total):
        total += 1
    return total


def main():
    profiler = RmsProfiler(keep_activations=True, context_sensitive=True)
    session = TraceSession(tools=EventBus([profiler]))

    with session:
        with AutoTracer(session):
            for n in (8, 16, 32, 64, 96):
                source = session.array(n)
                for index in range(n):
                    source[index] = index % (n // 2)    # ~half duplicates
                target = session.array(n)
                dedupe(source, target)
                checksum(source)

    print(render_bottlenecks(profiler.db, min_points=4))

    rows = []
    for key, profile in sorted(contexts_of(profiler.db, "contains").items()):
        caller = key.rsplit(";", 2)[-2]
        sizes = sorted(profile.points)
        rows.append([caller, profile.calls, sizes[0], sizes[-1]])
    print(table(
        ["contains() called from", "calls", "min input", "max input"],
        rows,
        title="Context-sensitive view: the same helper, two behaviours",
    ))
    print("dedupe's scan feeds contains() growing inputs; checksum's stays ~4.")


if __name__ == "__main__":
    main()
