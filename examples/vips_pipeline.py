#!/usr/bin/env python3
"""Profile the vips-like image pipeline (the PARSEC case study).

Shows the two Figure 5 / Figure 7 effects live:

* ``im_generate`` consumes strips through a fixed window — its rms is
  pinned at the window size while its trms reports the true strip;
* ``wbuffer_write_thread`` drains variable batches through one slot —
  its rms collapses onto one or two values while its trms spreads out.

Run:  python examples/vips_pipeline.py
"""

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.reporting import scatter, table
from repro.vipslike import vips_pipeline


def main():
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    scenario = vips_pipeline(workers=3, strips_per_worker=8, strip_cells=64, window=16)
    machine = scenario.run(tools=EventBus([rms, trms]), timeslice=9)

    out_words = len(machine.devices["imgout"].values)
    print(f"pipeline moved {out_words} output words through "
          f"{machine.stats.threads_spawned} threads "
          f"({machine.stats.total_blocks} basic blocks)\n")

    rows = []
    for prefix in ("im_generate", "wbuffer_write_thread"):
        rms_sizes = [a.size for a in rms.db.activations if a.routine.startswith(prefix)]
        trms_sizes = [a.size for a in trms.db.activations if a.routine.startswith(prefix)]
        rows.append([
            prefix,
            len(rms_sizes),
            f"{len(set(rms_sizes))} -> {len(set(trms_sizes))}",
            f"{min(rms_sizes)}..{max(rms_sizes)}",
            f"{min(trms_sizes)}..{max(trms_sizes)}",
        ])
    print(table(
        ["routine", "calls", "distinct sizes rms -> trms", "rms range", "trms range"],
        rows, title="Windowed input: apparent (rms) vs true (trms) sizes",
    ))

    wbuffer_points = [
        (a.size, a.cost) for a in trms.db.activations
        if a.routine == "wbuffer_write_thread"
    ]
    print(scatter(wbuffer_points,
                  title="wbuffer_write_thread — cost vs trms (batch sizes visible)",
                  xlabel="trms", ylabel="cost"))


if __name__ == "__main__":
    main()
