#!/usr/bin/env python3
"""Quickstart: input-sensitive profiling of plain Python code.

Profiles three classic algorithms with the pytrace substrate, then lets
the library *name* each routine's empirical growth class from a single
session — no manual input-size annotations anywhere.

Run:  python examples/quickstart.py
"""

from repro.core import EventBus, RmsProfiler
from repro.curvefit import select_model
from repro.pytrace import TraceSession, traced
from repro.reporting import render_report, scatter, table


@traced
def insertion_sort(data):
    for i in range(1, len(data)):
        key = data[i]
        j = i
        while j > 0 and data[j - 1] > key:
            data[j] = data[j - 1]
            j -= 1
        data[j] = key


@traced
def linear_sum(data):
    total = 0
    for i in range(len(data)):
        total += data[i]
    return total


@traced
def all_pairs_max_gap(data):
    best = 0
    for i in range(len(data)):
        for j in range(len(data)):
            gap = abs(data[i] - data[j])
            if gap > best:
                best = gap
    return best


def main():
    profiler = RmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([profiler]))

    with session:
        for n in (4, 8, 12, 16, 24, 32, 48):
            # reversed input: insertion sort's worst case
            data = session.array(n)
            for i in range(n):
                data[i] = n - i
            insertion_sort(data)
            linear_sum(session.array(n, fill=3))
            all_pairs_max_gap(session.array(n, fill=1))

    print(render_report(profiler.db, title="quickstart session"))

    rows = []
    for routine in ("insertion_sort", "linear_sum", "all_pairs_max_gap"):
        points = profiler.db.merged()[routine].worst_case_points()
        selection = select_model(points)
        rows.append([routine, len(points), selection.name, f"{selection.best.r2:.3f}"])
        if routine == "insertion_sort":
            print(scatter(points, title="insertion_sort — worst-case cost vs input size"))
    print(table(["routine", "plot points", "growth class", "R^2"], rows,
                title="Recovered empirical cost functions"))


if __name__ == "__main__":
    main()
