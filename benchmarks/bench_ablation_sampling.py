"""Ablation: burst-sampled profiling — accuracy vs analysis cost.

The paper's profiler observes every access (the honest but expensive
regime); bursty tracing (its related work) periodically samples.  This
ablation quantifies the dial on our workloads.

Distinct-count metrics interact subtly with sampling: a cell the
activation reads m times is observed with probability ~1-(1-1/k)^m, so
multi-read cells survive aggressive read sampling while single-read
cells thin out as 1/k.  Consequences measured here:

* the sampled rms is a *lower bound* on the true rms (dropping reads
  can only lose first-accesses), with high recall at small periods —
  the hot, repeatedly-read working set is robust;
* the naive burst-ratio correction over-shoots on multi-read workloads
  (it assumes the single-read regime) — reported, not trusted;
* read events analysed scale as 1/k and the analysis gets cheaper.
"""

from __future__ import annotations

import time

from repro.core import RmsProfiler
from repro.reporting import table
from repro.tools import SamplingShim
from repro.workloads import benchmark as get_benchmark

from conftest import EventRecorder, replay_recorded, run_once

PERIODS = [1, 2, 4, 8, 16]
REPEATS = 3


def run_ablation():
    recorder = EventRecorder()
    get_benchmark("351.bwaves").run(tools=recorder, threads=4, scale=2.0)
    get_benchmark("350.md").run(tools=recorder, threads=4, scale=2.0)
    events = recorder.events

    baseline_profiler = RmsProfiler()
    replay_recorded(events, baseline_profiler)
    true_total = baseline_profiler.db.total_size_sum()

    rows = []
    results = {}
    for period in PERIODS:
        best = float("inf")
        for _ in range(REPEATS):
            profiler = RmsProfiler()
            shim = SamplingShim(profiler, period=period)
            start = time.perf_counter()
            replay_recorded(events, shim)
            best = min(best, time.perf_counter() - start)
        sampled_total = profiler.db.total_size_sum()
        recall = sampled_total / true_total if true_total else 1.0
        corrected = sampled_total * shim.scale()
        results[period] = {
            "time": best,
            "recall": recall,
            "corrected": corrected,
            "forwarded": shim.forwarded,
            "seen": shim.seen,
        }
        rows.append([
            period,
            shim.forwarded,
            f"{best * 1000:.1f}ms",
            f"{100 * recall:.1f}%",
            f"{corrected / true_total:.2f}x",
        ])
    return rows, results, true_total


def test_ablation_sampling(benchmark):
    rows, results, true_total = run_once(benchmark, run_ablation)
    print()
    print(table(
        ["period", "reads analysed", "replay time", "rms recall",
         "naive xk correction"],
        rows, title=f"Ablation — burst sampling (true total rms {true_total})",
    ))

    # read counts scale as 1/k
    for period in PERIODS[1:]:
        expected = results[1]["forwarded"] / period
        assert abs(results[period]["forwarded"] - expected) <= 0.05 * expected + 4

    # full sampling is exact
    assert results[1]["recall"] == 1.0

    # sampling only loses input: recall is a true lower bound, and the
    # hot working set keeps it high at small periods
    previous = 1.0
    for period in PERIODS:
        recall = results[period]["recall"]
        assert recall <= 1.0 + 1e-9
        assert recall <= previous + 0.05   # ~monotone in the period
        previous = recall
    assert results[2]["recall"] > 0.6, results
    assert results[4]["recall"] > 0.4, results

    # the naive correction overshoots on these multi-read kernels —
    # the single-read-regime assumption does not hold here
    assert results[4]["corrected"] > true_total, results

    # the analysis gets cheaper once most reads are gone
    assert results[16]["time"] < results[1]["time"], results
