"""Ablation: routine-level vs calling-context-sensitive profiling.

aprof keys profiles by routine; context-sensitive profiling refines the
key to the full call path.  This ablation quantifies the trade on our
workloads:

* context profiles are a strict refinement: folding them back yields
  exactly the routine-level aggregates (correctness);
* the refinement buys resolution — more profiles and at least as many
  plot points, separating same-routine activations with different
  asymptotics (the kdtree recursion gets one profile per depth);
* the price is bounded: analysis-only replay time stays within a small
  factor, since context keys are composed once per call, not per access.
"""

from __future__ import annotations

import time

from repro.core import TrmsProfiler, fold_to_routines
from repro.reporting import table
from repro.workloads import benchmark as get_benchmark

from conftest import EventRecorder, replay_recorded, run_once

BENCHES = ["376.kdtree", "358.botsalgn", "351.bwaves"]
REPEATS = 3


def run_ablation():
    rows = []
    totals = {"routine_time": 0.0, "context_time": 0.0}
    correctness = []
    for name in BENCHES:
        recorder = EventRecorder()
        get_benchmark(name).run(tools=recorder, threads=4, scale=1.0)
        events = recorder.events

        timings = {}
        profilers = {}
        for mode, context in (("routine", False), ("context", True)):
            best = float("inf")
            for _ in range(REPEATS):
                profiler = TrmsProfiler(context_sensitive=context)
                start = time.perf_counter()
                replay_recorded(events, profiler)
                best = min(best, time.perf_counter() - start)
                profilers[mode] = profiler
            timings[mode] = best
        totals["routine_time"] += timings["routine"]
        totals["context_time"] += timings["context"]

        routine_db = profilers["routine"].db
        context_db = profilers["context"].db
        folded = fold_to_routines(context_db)
        plain = routine_db.merged()
        correctness.append(
            {r: (p.calls, p.size_sum, p.cost_sum) for r, p in folded.items()}
            == {r: (p.calls, p.size_sum, p.cost_sum) for r, p in plain.items()}
        )
        rows.append([
            name,
            len(plain),
            len(context_db.merged()),
            sum(p.distinct_sizes for p in plain.values()),
            sum(p.distinct_sizes for p in context_db.merged().values()),
            f"{timings['context'] / timings['routine']:.2f}x",
        ])
    return rows, totals, correctness


def test_ablation_context(benchmark):
    rows, totals, correctness = run_once(benchmark, run_ablation)
    print()
    print(table(
        ["benchmark", "routine profiles", "context profiles",
         "routine points", "context points", "time ratio"],
        rows, title="Ablation — context-sensitive vs routine-level keys",
    ))

    # correctness: context keys refine routine keys exactly
    assert all(correctness)

    for name, routine_profiles, context_profiles, routine_points, \
            context_points, _ in rows:
        assert context_profiles >= routine_profiles, name
        assert context_points >= routine_points, name

    # kdtree's recursion must fan out into per-depth contexts
    kdtree_row = rows[0]
    assert kdtree_row[2] > kdtree_row[1] + 3, kdtree_row

    # the cost of refinement stays bounded
    assert totals["context_time"] < 2.5 * totals["routine_time"], totals
