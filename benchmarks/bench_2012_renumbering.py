"""Section 4.4 ablation: cost and correctness of timestamp renumbering.

The paper amortises renumbering against Omega(2^w) operations between
overflows and reports it harmless in practice.  This bench quantifies
that on our implementation:

* correctness: a severely bounded counter (forcing renumbering every
  few hundred events) yields byte-identical profiles to an unbounded
  counter on a mixed multithreaded workload;
* cost: the bounded configuration's run time stays within a small
  factor of the unbounded one even at an absurd renumbering frequency,
  and the frequency scales inversely with the counter width, so a
  realistic 32-bit-style bound renumbers (effectively) never.
"""

from __future__ import annotations

import time

from repro.core import TrmsProfiler
from repro.reporting import table
from repro.workloads import benchmark as get_benchmark

from conftest import EventRecorder, replay_recorded, run_once

BOUNDS = [50, 200, 1000, None]


def run_ablation():
    recorder = EventRecorder()
    get_benchmark("351.bwaves").run(tools=recorder, threads=4, scale=1.0)
    get_benchmark("376.kdtree").run(tools=recorder, threads=4, scale=1.0)
    events = recorder.events

    results = []
    baseline_snapshot = None
    for bound in BOUNDS:
        profiler = TrmsProfiler(max_count=bound)
        start = time.perf_counter()
        replay_recorded(events, profiler)
        elapsed = time.perf_counter() - start
        snapshot = sorted(
            (profile.routine, profile.thread, profile.calls, profile.size_sum,
             profile.cost_sum)
            for profile in profiler.db
        )
        if bound is None:
            baseline_snapshot = snapshot
        results.append((bound, profiler.renumber_count, elapsed, snapshot))
    return results, baseline_snapshot, len(events)


def test_2012_renumbering(benchmark):
    results, baseline, event_count = run_once(benchmark, run_ablation)

    rows = [
        [str(bound or "unbounded"), renumbers, f"{elapsed * 1000:.1f}ms"]
        for bound, renumbers, elapsed, _ in results
    ]
    print()
    print(table(["counter bound", "renumberings", "replay time"], rows,
                title=f"Renumbering ablation ({event_count} events)"))

    # correctness: every bound reproduces the unbounded profiles exactly
    for bound, renumbers, _, snapshot in results:
        assert snapshot == baseline, f"bound {bound} changed the profiles"

    # the tighter the bound, the more renumberings — and the loosest
    # bound needs none at all on this trace
    renumber_counts = [renumbers for _, renumbers, _, _ in results]
    assert renumber_counts[0] > renumber_counts[1] > 0
    assert renumber_counts[-1] == 0

    # cost: even renumbering every ~50 counter ticks (hundreds of times
    # over the trace) stays within a small factor of the unbounded run
    # (the paper: amortised against Omega(2^w) operations, i.e. noise)
    times = {bound: elapsed for bound, _, elapsed, _ in results}
    assert times[50] < 50.0 * times[None], times       # pathological bound
    assert times[200] < 6.0 * times[None], times
    assert times[1000] < 3.0 * times[None], times
