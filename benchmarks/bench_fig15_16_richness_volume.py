"""Figures 15 and 16: routine profile richness and input volume curves.

Paper, Figure 15: for each benchmark, a curve where point (x, y) means
"x% of routines have profile richness at least y".  Only a small share
of routines gains points under trms (I/O and communication are
encapsulated in few components), but for those the gain is large — up to
~10^6x for dedup — and negative richness is statistically intangible.

Paper, Figure 16: the same tail representation for input volume; curves
drop steeply from 1 toward 0 around x ~ 8%, meaning roughly 8% of
routines carry the thread/stream input that rms cannot see, and for a
few routines (fluidanimate) almost *all* input is induced.

Asserted shape over the PARSEC-like suite plus minislap:

* negative richness is rare (< 10% of routines overall);
* dedup (the pipeline) contains routines with large richness gain, and
  its maximum gain is among the largest across the suite;
* every benchmark's volume curve starts high (some routine with volume
  >= 0.5) and ends at 0 (some routine untouched by induced input);
* fluidanimate-like high-sharing benchmarks have routines with volume
  close to 1.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core import ProfileDatabase, richness_by_routine, input_volume_by_routine
from repro.minidb import minislap
from repro.pytrace import TraceSession
from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.reporting import richness_curve, table, volume_curve
from repro.workloads import PARSEC

from conftest import run_once

BENCHES = ["blackscholes", "canneal", "dedup", "fluidanimate", "swaptions", "vips"]


def profile_all() -> Dict[str, Tuple[ProfileDatabase, ProfileDatabase]]:
    databases = {}
    for name in BENCHES:
        rms_db, trms_db, _ = PARSEC[name].profile(threads=4, scale=1.0)
        databases[name] = (rms_db, trms_db)
    rms = RmsProfiler()
    trms = TrmsProfiler()
    session = TraceSession(tools=EventBus([rms, trms]))
    with session:
        minislap(session, clients=4, queries_per_client=10, preload_rows=12)
    databases["mysqlslap"] = (rms.db, trms.db)
    return databases


def test_fig15_16_richness_and_volume(benchmark):
    databases = run_once(benchmark, profile_all)

    rows = []
    negative_total = 0
    routine_total = 0
    max_gain = {}
    high_volume = {}
    for name, (rms_db, trms_db) in databases.items():
        richness = richness_by_routine(rms_db, trms_db)
        volumes = input_volume_by_routine(rms_db, trms_db)
        curve_r = richness_curve(rms_db, trms_db)
        curve_v = volume_curve(rms_db, trms_db)
        negative_total += sum(1 for value in richness.values() if value < 0)
        routine_total += len(richness)
        max_gain[name] = max(richness.values(), default=0.0)
        high_volume[name] = max(volumes.values(), default=0.0)
        gained = sum(1 for value in richness.values() if value > 0)
        rows.append([
            name,
            len(richness),
            gained,
            f"{max_gain[name]:.1f}",
            f"{high_volume[name]:.2f}",
            f"{curve_v[0][1]:.2f}" if curve_v else "-",
        ])
    print()
    print(table(
        ["benchmark", "routines", "gained points", "max richness",
         "max volume", "top volume point"],
        rows, title="Figures 15/16 — profile richness and input volume",
    ))

    # negative richness is statistically intangible
    assert negative_total <= 0.10 * routine_total, (negative_total, routine_total)

    # the pipeline benchmark shows the largest richness gains
    assert max_gain["dedup"] > 0.5, max_gain
    assert max_gain["dedup"] >= max(
        value for name, value in max_gain.items() if name in ("swaptions", "blackscholes")
    ), max_gain

    # every benchmark has some induced input carrier ...
    for name in ("dedup", "fluidanimate", "vips", "mysqlslap"):
        assert high_volume[name] >= 0.5, (name, high_volume[name])
    assert high_volume["canneal"] >= 0.3, high_volume["canneal"]
    # ... and the high-sharing benchmark's carriers take almost all
    # their input from other threads (paper: fluidanimate ~ all induced)
    assert high_volume["fluidanimate"] > 0.8, high_volume

    # volume curves end near 0 for compute-dominated benchmarks: most
    # of their routines see little induced input (lock-heavy canneal is
    # the exception — every thread keeps absorbing foreign updates)
    for name in ("swaptions", "blackscholes", "dedup", "mysqlslap"):
        rms_db, trms_db = databases[name]
        volumes = input_volume_by_routine(rms_db, trms_db)
        if volumes:
            assert min(volumes.values()) <= 0.2, (name, min(volumes.values()))
