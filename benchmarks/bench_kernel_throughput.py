"""Flat-array kernel throughput: the columnar hot loop, measured.

The farm made the offline TRMS analysis parallel; the flat kernel makes
each worker *fast*.  This bench measures exactly the quantity the kernel
was built for — single-shard analysis throughput (events/s) of
``run_shard`` — for the classic two-pass machinery vs the flat columnar
single pass, on the same recorded v2 traces:

* exactness first: for every workload the two kernels' profile dumps
  must be byte-identical (their SHA-256 digests are recorded in the
  result envelope and re-checked by the CI benchmark gate);
* throughput and speedup per workload, best-of-N to shed scheduler
  noise;
* the speedup assertion (flat > 2x classic) is deliberately below the
  ~6-8x this machine measures so CI jitter cannot flake it; the
  *recorded* speedup rides in the envelope's ``gate.ratios`` and is
  what :mod:`tools.bench_gate` holds future commits to (>25% regression
  fails the gate).
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
import time

from repro.farm import BinaryTraceWriter, save_profile
from repro.farm.binfmt import read_trace_meta
from repro.farm.shards import plan_shards
from repro.farm.worker import ShardTask, run_shard
from repro.reporting import table
from repro.workloads import benchmark as get_benchmark

from conftest import bench_scale, run_once, save_result

WORKLOADS = ("376.kdtree", "350.md")
THREADS = 4
KERNELS = ("classic", "flat")
ROUNDS = 9


def record_workload(name: str, path: str, scale: float) -> int:
    with open(path, "wb") as stream:
        writer = BinaryTraceWriter(stream, chunk_events=4096)
        get_benchmark(name).run(tools=writer, threads=THREADS, scale=scale)
        writer.close()
    return writer.events_written


def profile_digest(db) -> str:
    stream = io.StringIO()
    save_profile(db, stream)
    return hashlib.sha256(stream.getvalue().encode("utf-8")).hexdigest()


def measure_kernels(path: str):
    """Best-of-N single-shard wall time and profile digest per kernel.

    The kernels' rounds are *interleaved* (classic, flat, classic, …)
    so a frequency step or a noisy neighbour hits both alike — the gate
    compares the speedup ratio, which interleaving keeps stable where
    back-to-back blocks would skew it.
    """
    with open(path, "rb") as stream:
        meta = read_trace_meta(stream)
    shard = plan_shards(meta, 1).shards[0]
    tasks = {
        kernel: ShardTask(path, shard.shard_id, shard.threads,
                          shard.chunk_indices, kernel=kernel)
        for kernel in KERNELS
    }
    seconds = {kernel: float("inf") for kernel in KERNELS}
    digests = {}
    for kernel, task in tasks.items():  # warm page cache and allocator
        digests[kernel] = profile_digest(run_shard(task).db)
    for _ in range(ROUNDS):
        for kernel, task in tasks.items():
            start = time.perf_counter()
            run_shard(task)
            seconds[kernel] = min(seconds[kernel],
                                  time.perf_counter() - start)
    return meta.event_count, seconds, digests


def run_study(scale: float):
    study = {}
    for name in WORKLOADS:
        handle, path = tempfile.mkstemp(suffix=".rpt2")
        os.close(handle)
        try:
            record_workload(name, path, scale)
            events, seconds, digests = measure_kernels(path)
        finally:
            os.unlink(path)
        study[name] = {"events": events, "seconds": seconds, "digests": digests}
    return study


def test_kernel_throughput(benchmark, scale):
    study = run_once(benchmark, lambda: run_study(scale))

    rows = []
    throughput = {}
    ratios = {}
    hashes = {}
    for name, data in study.items():
        classic = data["seconds"]["classic"]
        flat = data["seconds"]["flat"]
        speedup = classic / flat if flat else float("inf")
        for kernel in KERNELS:
            events_per_s = data["events"] / data["seconds"][kernel]
            throughput[f"{kernel}_events_per_s:{name}"] = round(events_per_s)
            rows.append([
                name, kernel, data["events"],
                f"{data['seconds'][kernel] * 1000:.1f}ms",
                f"{events_per_s:,.0f}",
                f"{classic / data['seconds'][kernel]:.2f}x",
            ])
        ratios[f"speedup:{name}"] = round(speedup, 2)
        hashes[name] = data["digests"]["flat"]
    print()
    print(table(
        ["workload", "kernel", "events", "time", "events/s", "speedup"],
        rows,
        title=f"Analysis-kernel throughput — single shard, best of {ROUNDS}",
    ))

    # exactness is unconditional: the kernels must be byte-identical
    for name, data in study.items():
        assert data["digests"]["flat"] == data["digests"]["classic"], \
            f"{name}: flat and classic kernels produced different profiles"

    # the paper-shape assertion: columnar flat beats object-per-event
    # classic with margin (this machine: ~6-8x; threshold sheds CI noise)
    for name, data in study.items():
        assert data["seconds"]["flat"] < data["seconds"]["classic"] / 2, \
            f"{name}: flat kernel not >2x classic: {data['seconds']}"

    save_result("kernel_throughput", {
        "workloads": study,
        "gate": {
            "scale": bench_scale(),
            "ratios": ratios,
            "throughput": throughput,
            "profile_sha256": hashes,
        },
    })
