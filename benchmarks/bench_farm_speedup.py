"""Farm extension: the multiprocess speedup the GIL withheld, measured.

`bench_ext_parallel_analysis.py` demonstrates the offline analysis is
*structurally* parallel but concedes the thread-pooled variant "stays
within noise of sequential under the GIL … speedup requires processes".
This bench makes that measurement with the farm's process workers on a
recorded 16-thread workload mix:

* exactness first: farm output (any jobs count) is bit-identical to
  the online profiler — speed never buys back correctness;
* throughput (events/s) and parallel efficiency for 1 vs 4 worker
  processes, on the same v2 trace file;
* the speedup assertion (>1.5x with 4 workers) only fires on hosts
  with >= 4 CPUs — on smaller machines the numbers are printed and the
  multiprocess run is only required not to collapse (the fork/IPC tax
  stays bounded).
"""

from __future__ import annotations

import os
import tempfile
import time

import hashlib
import io

from repro.core import TrmsProfiler, replay
from repro.farm import BinaryTraceWriter, analyze_file, read_binary_trace, save_profile
from repro.reporting import table
from repro.workloads import benchmark as get_benchmark

from conftest import bench_scale, run_once, save_result

THREADS = 16
WORKLOADS = ("351.bwaves", "350.md", "372.smithwa")
JOBS = (1, 4)


def record_workload(path: str) -> int:
    with open(path, "wb") as stream:
        writer = BinaryTraceWriter(stream, chunk_events=4096)
        for name in WORKLOADS:
            get_benchmark(name).run(tools=writer, threads=THREADS, scale=1.5)
        writer.close()
    return writer.events_written


def profile_snapshot(db):
    return sorted(
        (p.routine, p.thread, p.calls, p.size_sum, p.cost_sum,
         p.induced_thread_sum, p.induced_external_sum)
        for p in db
    ), db.total_induced()


def run_study():
    handle, path = tempfile.mkstemp(suffix=".rpt2")
    os.close(handle)
    try:
        event_count = record_workload(path)

        with open(path, "rb") as stream:
            events = read_binary_trace(stream)
        online = TrmsProfiler()
        replay(events, online)
        online_snapshot = profile_snapshot(online.db)
        del events

        timings = {}
        snapshots = {}
        digest = None
        for jobs in JOBS:
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                result = analyze_file(path, jobs=jobs)
                best = min(best, time.perf_counter() - start)
            timings[jobs] = best
            snapshots[jobs] = profile_snapshot(result.db)
            stream = io.StringIO()
            save_profile(result.db, stream)
            digest = hashlib.sha256(stream.getvalue().encode("utf-8")).hexdigest()
        return event_count, timings, snapshots, online_snapshot, digest
    finally:
        os.unlink(path)


def test_farm_speedup(benchmark):
    event_count, timings, snapshots, online_snapshot, digest = run_once(
        benchmark, run_study)

    speedup = timings[1] / timings[4] if timings[4] else float("inf")
    rows = []
    for jobs in JOBS:
        seconds = timings[jobs]
        rows.append([
            f"{jobs} worker process(es)",
            f"{seconds * 1000:.1f}ms",
            f"{event_count / seconds:,.0f}",
            f"{timings[1] / seconds:.2f}x",
            f"{timings[1] / seconds / jobs * 100:.0f}%",
        ])
    print()
    print(table(
        ["configuration", "time", "events/s", "speedup", "efficiency"],
        rows,
        title=f"Farm speedup — {event_count} events, {THREADS} guest threads, "
              f"{os.cpu_count()} host CPUs",
    ))

    # exactness is unconditional: processes must change nothing
    for jobs in JOBS:
        assert snapshots[jobs] == online_snapshot, f"jobs={jobs} diverged"

    save_result("farm_speedup", {
        "event_count": event_count,
        "timings_ms": {str(jobs): round(timings[jobs] * 1000, 2) for jobs in JOBS},
        "speedup_4v1": round(speedup, 2),
        "host_cpus": os.cpu_count(),
        "gate": {
            "scale": bench_scale(),
            # parallel speedup depends on the host's core count, so the
            # gate only holds the result *exact* (hash) — throughput is
            # informational and compared with --absolute alone
            "ratios": {},
            "throughput": {
                "farm_events_per_s:4jobs": round(event_count / timings[4])
                if timings[4] else 0,
            },
            "profile_sha256": {"workload_mix": digest},
        },
    })

    if (os.cpu_count() or 1) >= 4:
        # the measurement the GIL forbade: real parallel speedup
        assert speedup > 1.5, timings
    else:
        # Undersized host: with fewer CPUs than workers the runs
        # serialise, and each worker redundantly rebuilds the write
        # index from the write chunks — so wall time can approach
        # (workers x index share) of sequential.  Only require that
        # ceiling to hold; the speedup itself needs real cores.  The
        # constant term absorbs pool spawn cost, which the flat kernel
        # made visible by shrinking the sequential time itself.
        assert timings[4] < (1.5 * max(JOBS)) * timings[1] + 1.0, timings
