"""Figures 1–3: the paper's synthetic examples, end to end on the VM.

* Figure 1a: f reads x, another thread's g overwrites it, f reads again
  — rms_f = 1 but trms_f = 2 (one thread-induced first-access).
* Figure 1b: the induced read happens inside a child h — trms_h = 1,
  trms_f = 2, and f's later read is *not* induced (it saw x through h).
* Figure 2: producer–consumer over one cell — rms_consumer = 1,
  trms_consumer = n for n produced values.
* Figure 3: buffered external reads through a 2-cell buffer —
  rms_externalRead = 1, trms_externalRead = n, all external.

The benchmark times the full pipeline (guest execution + both
profilers) over all four scenarios.
"""

from __future__ import annotations

from repro.reporting import table
from repro.vm import programs

from conftest import profile_scenario, run_once

ITEMS = 24


def run_examples():
    results = {}
    results["fig1a"] = profile_scenario(programs.figure_1a())
    results["fig1b"] = profile_scenario(programs.figure_1b())
    results["fig2"] = profile_scenario(programs.producer_consumer(ITEMS))
    results["fig3"] = profile_scenario(programs.buffered_read(ITEMS))
    return results


def one(db, routine):
    records = [a for a in db.activations if a.routine == routine]
    assert len(records) == 1, (routine, records)
    return records[0]


def test_fig01_03_examples(benchmark):
    results = run_once(benchmark, run_examples)

    rows = []
    rms_1a, trms_1a = results["fig1a"]
    rows.append(["1a", "f", one(rms_1a, "f").size, one(trms_1a, "f").size, "1 / 2"])
    rms_1b, trms_1b = results["fig1b"]
    rows.append(["1b", "f", one(rms_1b, "f").size, one(trms_1b, "f").size, "1 / 2"])
    rows.append(["1b", "h", one(rms_1b, "h").size, one(trms_1b, "h").size, "1 / 1"])
    rms_2, trms_2 = results["fig2"]
    rows.append([
        "2", "consumer", one(rms_2, "consumer").size, one(trms_2, "consumer").size,
        f"1 / {ITEMS}",
    ])
    rms_3, trms_3 = results["fig3"]
    rows.append([
        "3", "externalRead", one(rms_3, "externalRead").size,
        one(trms_3, "externalRead").size, f"1 / {ITEMS}",
    ])
    print()
    print(table(
        ["figure", "routine", "rms", "trms", "paper rms/trms"], rows,
        title="Figures 1-3 — synthetic examples",
    ))

    assert one(rms_1a, "f").size == 1 and one(trms_1a, "f").size == 2
    assert one(trms_1a, "f").induced_thread == 1

    assert one(rms_1b, "f").size == 1 and one(trms_1b, "f").size == 2
    assert one(rms_1b, "h").size == 1 and one(trms_1b, "h").size == 1
    assert one(trms_1b, "h").induced_thread == 1

    assert one(rms_2, "consumer").size == 1
    consumer = one(trms_2, "consumer")
    assert consumer.size == ITEMS and consumer.induced_thread == ITEMS

    assert one(rms_3, "externalRead").size == 1
    external = one(trms_3, "externalRead")
    assert external.size == ITEMS and external.induced_external == ITEMS
