"""Figure 4: worst-case running time plots of ``mysql_select``.

Paper: SELECT * over tables of increasing size.  Tuples stream through a
kernel-filled buffer, so the rms stops growing once the table exceeds
the buffer (it "roughly coincides with the buffer size") while the cost
keeps rising — the rms plot makes the routine look at-least-quadratic.
The trms counts every buffer refill as induced input, giving the true
linear trend.

Here: SELECT * over tables of 8..96 rows against a 4-frame buffer pool.
Asserted shape:

* the trms plot classifies as linear (O(n) over the model family);
* the rms axis *saturates*: its spread is a small fraction of the trms
  spread, while cost grows several-fold across the same runs — fitting
  a power law through the rms plot yields a wildly super-linear
  exponent, the paper's misleading-bottleneck effect.
"""

from __future__ import annotations

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.curvefit import classify_growth, fit_power_law
from repro.minidb import Database
from repro.pytrace import TraceSession
from repro.reporting import scatter, table

from conftest import run_once, save_result

TABLE_SIZES = [8, 16, 24, 32, 48, 64, 80, 96]
POOL_FRAMES = 4
PAGE_SIZE = 9


def scan_points():
    rms_points = []
    trms_points = []
    for rows in TABLE_SIZES:
        rms = RmsProfiler(keep_activations=True)
        trms = TrmsProfiler(keep_activations=True)
        session = TraceSession(tools=EventBus([rms, trms]))
        with session:
            db = Database(session, page_size=PAGE_SIZE, pool_frames=POOL_FRAMES)
            db.execute("CREATE TABLE t (a, b)")
            for index in range(rows):
                db.execute(f"INSERT INTO t VALUES ({index}, {index})")
            db.flush_now()
            db.execute("SELECT * FROM t")
        select_rms = [a for a in rms.db.activations if a.routine == "mysql_select"][-1]
        select_trms = [a for a in trms.db.activations if a.routine == "mysql_select"][-1]
        rms_points.append((select_rms.size, select_rms.cost))
        trms_points.append((select_trms.size, select_trms.cost))
    return rms_points, trms_points


def test_fig04_mysql_select(benchmark):
    rms_points, trms_points = run_once(benchmark, scan_points)

    print()
    print(table(
        ["rows", "rms", "trms", "cost"],
        [
            [rows, rms[0], trms[0], trms[1]]
            for rows, rms, trms in zip(TABLE_SIZES, rms_points, trms_points)
        ],
        title="Figure 4 — mysql_select input sizes",
    ))
    print(scatter(rms_points, title="Figure 4a — cost vs rms (misleading)",
                  xlabel="rms", ylabel="cost"))
    print(scatter(trms_points, title="Figure 4b — cost vs trms (true, linear)",
                  xlabel="trms", ylabel="cost"))

    # trms tracks the true input: linear growth
    growth = classify_growth(trms_points)
    print(f"trms growth class: {growth}")
    assert growth in ("O(n)", "O(n log n)"), growth

    # the rms axis saturates near the pool while cost keeps growing
    rms_spread = max(p[0] for p in rms_points) - min(p[0] for p in rms_points)
    trms_spread = max(p[0] for p in trms_points) - min(p[0] for p in trms_points)
    pool_cells = POOL_FRAMES * PAGE_SIZE
    assert max(p[0] for p in rms_points) <= pool_cells + PAGE_SIZE
    assert rms_spread < 0.35 * trms_spread, (rms_spread, trms_spread)
    cost_ratio = rms_points[-1][1] / rms_points[0][1]
    assert cost_ratio > 4.0, cost_ratio

    # the misleading effect: a power-law fit through the rms plot
    # suggests strongly super-linear growth (paper: "at least quadratic")
    rms_fit = fit_power_law(rms_points)
    trms_fit = fit_power_law(trms_points)
    print(f"power-law exponents: rms {rms_fit.exponent:.2f} "
          f"vs trms {trms_fit.exponent:.2f}")
    save_result("fig04_mysql_select", {
        "table_sizes": TABLE_SIZES,
        "rms_points": rms_points,
        "trms_points": trms_points,
        "rms_exponent": rms_fit.exponent,
        "trms_exponent": trms_fit.exponent,
        "trms_growth": growth,
    })
    assert rms_fit.exponent > 1.8, rms_fit
    assert 0.8 <= trms_fit.exponent <= 1.25, trms_fit
