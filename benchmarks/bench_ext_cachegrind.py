"""Extension experiment: cache behaviour of the suites under cachegrind.

Not in the paper — the comparator family there stops at helgrind — but a
natural companion study once a cachegrind-style simulator shares the
event bus: memory-*access-pattern* differences between the kernels show
up as cache miss rates the same way their *input* differences show up as
rms/trms.

Asserted shape (textbook cache behaviour):

* the sequential streaming kernels (stencils) enjoy spatial locality:
  their L1 miss rate stays well below the irregular gather/scatter
  kernel's;
* the compute-only Monte Carlo kernel, whose footprint is a handful of
  result cells, has a near-zero miss rate;
* LL misses never exceed L1 misses, and every rate is a valid fraction.
"""

from __future__ import annotations

from repro.reporting import table
from repro.tools import Cachegrind
from repro.workloads import benchmark as get_benchmark

from conftest import run_once, save_result

BENCHES = ["351.bwaves", "359.botsspar", "swaptions", "350.md", "canneal"]


def run_study():
    results = {}
    for name in BENCHES:
        tool = Cachegrind()
        get_benchmark(name).run(tools=tool, threads=4, scale=2.0)
        l1_rate, ll_rate = tool.miss_rates()
        results[name] = {
            "accesses": tool.l1.accesses,
            "l1_rate": l1_rate,
            "ll_rate": ll_rate,
            "l1_misses": tool.l1.misses,
            "ll_misses": tool.ll.misses,
            "worst": tool.worst_routines(1),
        }
    return results


def test_ext_cachegrind(benchmark):
    results = run_once(benchmark, run_study)
    rows = [
        [name, data["accesses"], f"{100 * data['l1_rate']:.1f}%",
         f"{100 * data['ll_rate']:.1f}%",
         data["worst"][0][0] if data["worst"] else "-"]
        for name, data in results.items()
    ]
    print()
    print(table(
        ["benchmark", "accesses", "L1 miss rate", "LL miss rate", "hottest routine"],
        rows, title="Extension — cache simulation across the suites",
    ))
    save_result("ext_cachegrind", {
        name: {k: v for k, v in data.items() if k != "worst"}
        for name, data in results.items()
    })

    for name, data in results.items():
        assert 0.0 <= data["ll_rate"] <= 1.0
        assert 0.0 <= data["l1_rate"] <= 1.0
        assert data["ll_misses"] <= data["l1_misses"], name

    # streaming beats irregular access
    assert results["351.bwaves"]["l1_rate"] < results["359.botsspar"]["l1_rate"]
    assert results["351.bwaves"]["l1_rate"] < results["canneal"]["l1_rate"]
    # tiny-footprint compute stays resident
    assert results["swaptions"]["l1_rate"] < 0.10, results["swaptions"]
