"""Shared helpers for the evaluation benchmarks.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Conventions:

* benches print their table/series (run ``pytest benchmarks/
  --benchmark-only -s`` to see them) and *assert the paper's shape* —
  who wins, what saturates, what grows — never absolute numbers;
* the pytest-benchmark fixture times the headline computation of each
  experiment (one round: these are end-to-end system runs, not
  microbenchmarks);
* ``REPRO_BENCH_SCALE`` scales workload sizes (default 1.0).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Tuple

import pytest

from repro.core import EventBus, ProfileDatabase, RmsProfiler, TrmsProfiler
from repro.core.events import TraceConsumer


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def scale() -> float:
    return bench_scale()


def run_once(benchmark, fn: Callable):
    """Time ``fn`` once through pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def timed(fn: Callable) -> Tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def profile_scenario(scenario, timeslice: int = 23) -> Tuple[ProfileDatabase, ProfileDatabase]:
    """Run a VM scenario under both profilers; return (rms_db, trms_db)."""
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    scenario.run(tools=EventBus([rms, trms]), timeslice=timeslice)
    return rms.db, trms.db


class EventRecorder(TraceConsumer):
    """Records the raw event stream of a run for later replay.

    Replaying a recorded stream into a tool measures the tool's
    *analysis-only* cost, free of VM interpretation and scheduling noise
    — the precise way to compare profiler variants.
    """

    def __init__(self):
        self.events = []

    def on_call(self, thread, routine):
        self.events.append(("on_call", thread, routine))

    def on_return(self, thread):
        self.events.append(("on_return", thread, None))

    def on_read(self, thread, addr):
        self.events.append(("on_read", thread, addr))

    def on_write(self, thread, addr):
        self.events.append(("on_write", thread, addr))

    def on_kernel_read(self, thread, addr):
        self.events.append(("on_kernel_read", thread, addr))

    def on_kernel_write(self, thread, addr):
        self.events.append(("on_kernel_write", thread, addr))

    def on_thread_switch(self, thread):
        self.events.append(("on_thread_switch", thread, None))

    def on_cost(self, thread, units):
        self.events.append(("on_cost", thread, units))


def replay_recorded(events, tool) -> None:
    """Feed recorded events into ``tool`` by direct method dispatch."""
    tool.on_start()
    for name, first, second in events:
        method = getattr(tool, name)
        if second is None:
            method(first)
        else:
            method(first, second)
    tool.on_finish()


def geometric_mean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: schema tag of benchmarks/results/*.json (bump on envelope changes)
RESULT_SCHEMA = "repro-bench/1"


def results_dir() -> str:
    """Where envelopes land: ``REPRO_BENCH_RESULTS`` or benchmarks/results/.

    The override exists for the CI benchmark gate (``tools/bench_gate.py``),
    which runs the benches into a scratch directory and diffs the fresh
    envelopes against the committed baselines without touching
    ``benchmarks/results/``.
    """
    return os.environ.get("REPRO_BENCH_RESULTS", _RESULTS_DIR)


def _git_sha() -> "str | None":
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip() or None
    except Exception:
        return None


def save_result(name: str, payload) -> str:
    """Persist one experiment's series as JSON under benchmarks/results/.

    Every bench saves what it printed, so downstream plotting (or a
    later diff against the paper) never needs to re-run the suite.
    The payload is wrapped in the shared ``repro-bench/1`` envelope —
    ``schema``/``run_id``/``git_sha``/``timestamp``/``bench``/``scale``
    around a ``metrics`` key — so result files from different sessions
    and machines stay comparable.  A ``gate`` key inside the payload is
    what ``tools/bench_gate.py`` compares against the committed
    baselines.  Returns the path written.
    """
    import datetime
    import json
    import uuid

    envelope = {
        "schema": RESULT_SCHEMA,
        "run_id": uuid.uuid4().hex,
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "bench": name,
        "scale": bench_scale(),
        "metrics": payload,
    }
    directory = results_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w") as stream:
        json.dump(envelope, stream, indent=2, default=str)
    return path
