"""PLDI-2012-style experiment: amortised complexity in cost plots.

The 2012 paper's plots come in flavours — *worst-case* (max cost per
input size) and *average* — precisely because they read differently on
amortised data structures.  A hash table with doubling rehash is the
canonical case: the average insert cost is flat, but the worst-case
plot spikes at every capacity doubling, and the rehash routine itself
is plainly linear in the table it copies.

Asserted shape:

* ``ht_insert`` average cost stays within a small constant band as the
  table grows (amortised O(1));
* its worst-case cost spikes by an order of magnitude over the median;
* ``ht_grow`` input sizes double step by step and its cost plot
  classifies linear;
* memcheck confirms the table lifecycle is clean (every rehash frees
  the old table; exactly the live table remains).
"""

from __future__ import annotations

from repro.core import EventBus, RmsProfiler
from repro.curvefit import classify_growth
from repro.reporting import scatter, table
from repro.tools import Memcheck
from repro.vm import programs

from conftest import run_once, save_result

INSERTS = 180


def run_table():
    profiler = RmsProfiler(keep_activations=True)
    memcheck = Memcheck()
    programs.hash_table(INSERTS).run(tools=EventBus([profiler, memcheck]))
    inserts = [a for a in profiler.db.activations if a.routine == "ht_insert"]
    grows = [a for a in profiler.db.activations if a.routine == "ht_grow"]
    return inserts, grows, memcheck.report()


def test_2012_amortization(benchmark):
    inserts, grows, heap_report = run_once(benchmark, run_table)

    profile = {}
    for record in inserts:
        profile.setdefault(record.size, []).append(record.cost)
    worst = sorted((size, max(costs)) for size, costs in profile.items())
    average = sorted((size, sum(costs) / len(costs)) for size, costs in profile.items())
    grow_points = [(a.size, a.cost) for a in grows]

    print()
    print(table(
        ["rehash #", "table cells read", "cost"],
        [[index + 1, size, cost] for index, (size, cost) in enumerate(grow_points)],
        title="Amortisation — ht_grow activations",
    ))
    print(scatter(worst, title="ht_insert — worst-case plot (rehash spikes)",
                  xlabel="rms", ylabel="max cost"))
    print(scatter(average, title="ht_insert — average plot (flat)",
                  xlabel="rms", ylabel="mean cost"))
    save_result("amortization_hash_table", {
        "worst": worst, "average": average, "grow_points": grow_points,
    })

    costs = sorted(a.cost for a in inserts)
    median = costs[len(costs) // 2]
    assert max(costs) > 10 * median, (median, max(costs))

    # amortised O(1): the 90th-percentile insert cost is a small constant
    p90 = costs[int(0.9 * (len(costs) - 1))]
    assert p90 <= 3 * median + 6, (median, p90)

    # rehash inputs double; rehash cost is linear in its input
    sizes = [size for size, _ in grow_points]
    assert len(sizes) >= 4
    for small, big in zip(sizes, sizes[1:]):
        assert 1.5 * small < big < 3.0 * small, sizes
    assert classify_growth(grow_points) in ("O(n)", "O(n log n)")

    # heap hygiene: every old table freed, no access errors
    assert heap_report["errors"] == []
    assert heap_report["frees"] == len(grows)
    assert len(heap_report["leaks"]) == 1
