"""Microbenchmarks: raw analysis throughput of each profiler.

Unlike the experiment benches (one timed round each), these use
pytest-benchmark statistically: the same recorded event stream is
replayed into a fresh profiler per round, giving stable events/second
numbers for the regression record.  The stream mixes call-heavy
(kdtree), memory-heavy (bwaves) and kernel-I/O (imagick) traffic.
"""

from __future__ import annotations

import pytest

from repro.core import NaiveTrms, RmsProfiler, TrmsProfiler
from repro.workloads import benchmark as get_benchmark

from conftest import EventRecorder, replay_recorded

_STREAM = None


def stream():
    global _STREAM
    if _STREAM is None:
        recorder = EventRecorder()
        for name in ("376.kdtree", "351.bwaves", "367.imagick"):
            get_benchmark(name).run(tools=recorder, threads=4, scale=1.0)
        _STREAM = recorder.events
    return _STREAM


@pytest.mark.parametrize("factory, label", [
    (RmsProfiler, "rms"),
    (TrmsProfiler, "trms"),
    (lambda: TrmsProfiler(context_sensitive=True), "trms-context"),
    (lambda: TrmsProfiler(use_chunked_shadow=True), "trms-chunked"),
], ids=["rms", "trms", "trms-context", "trms-chunked"])
def test_profiler_throughput(benchmark, factory, label):
    events = stream()

    def run():
        replay_recorded(events, factory())

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    rate = len(events) / benchmark.stats.stats.mean
    print(f"\n{label}: {rate / 1000:.0f}k events/s over {len(events)} events")
    assert rate > 50_000, f"{label} fell below 50k events/s: {rate:.0f}"


def deep_stream(depth: int = 40, rounds: int = 60, reads: int = 30):
    """A call-stack-deep stream: here the Figure 10 oracle's per-access
    stack walk costs ~depth times the O(1) timestamping update."""
    events = [("on_thread_switch", 1, None)]
    for index in range(depth):
        events.append(("on_call", 1, f"f{index}"))
    for round_number in range(rounds):
        for read in range(reads):
            events.append(("on_read", 1, (round_number * reads + read) % 64))
        events.append(("on_cost", 1, 1))
    for index in range(depth):
        events.append(("on_return", 1, None))
    return events


def test_naive_oracle_is_much_slower(benchmark):
    """The gap the latest-access approach exists to close: on deep call
    stacks the Figure 10 oracle walks every pending frame per access."""
    import time

    events = deep_stream()

    def run():
        replay_recorded(events, NaiveTrms())

    benchmark.pedantic(run, rounds=3, iterations=1)
    naive_rate = len(events) / benchmark.stats.stats.min

    fast_best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        replay_recorded(events, TrmsProfiler())
        fast_best = min(fast_best, time.perf_counter() - start)
    fast_rate = len(events) / fast_best
    print(f"\nnaive {naive_rate / 1000:.0f}k events/s vs "
          f"timestamping {fast_rate / 1000:.0f}k events/s at depth 40")
    assert fast_rate > 2.0 * naive_rate
