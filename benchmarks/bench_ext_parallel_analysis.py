"""Extension experiment: the paper's future work, measured.

"It would be interesting to adapt our methodology to a fully scalable
and concurrent dynamic instrumentation framework, in order to exploit
parallelism to leverage the slowdown of our profiler."  The offline
two-pass analysis (`repro.core.offline`) does the algorithmic half of
that: after a cheap write-index pass, per-thread analyses share no
mutable state.

Measured and asserted here, on a recorded 16-thread workload mix:

* exactness: the offline analysis reproduces the online profiler's
  profiles bit for bit (also pinned by hypothesis tests);
* the index pass is a small fraction of the total analysis cost, i.e.
  the parallelisable portion dominates (Amdahl's law is on our side);
* the thread-pooled variant stays within noise of sequential under the
  GIL (structure demonstrated; speedup requires processes) and remains
  exact.
"""

from __future__ import annotations

import time

from repro.core import Event, EventKind, TrmsProfiler, analyze_trace, build_write_index
from repro.reporting import table
from repro.workloads import benchmark as get_benchmark

from conftest import EventRecorder, replay_recorded, run_once

_KIND_MAP = {
    "on_call": EventKind.CALL, "on_return": EventKind.RETURN,
    "on_read": EventKind.READ, "on_write": EventKind.WRITE,
    "on_kernel_read": EventKind.KERNEL_READ,
    "on_kernel_write": EventKind.KERNEL_WRITE,
    "on_thread_switch": EventKind.THREAD_SWITCH,
    "on_cost": EventKind.COST,
}


def record_events():
    recorder = EventRecorder()
    for name in ("351.bwaves", "350.md", "372.smithwa"):
        get_benchmark(name).run(tools=recorder, threads=8, scale=1.5)
    events = []
    for name, first, second in recorder.events:
        kind = _KIND_MAP[name]
        if kind == EventKind.THREAD_SWITCH:
            events.append(Event(kind, first, first))
        elif kind == EventKind.RETURN:
            events.append(Event(kind, first, None))
        else:
            events.append(Event(kind, first, second))
    return recorder.events, events


def run_study():
    raw_events, events = record_events()

    online = TrmsProfiler()
    start = time.perf_counter()
    replay_recorded(raw_events, online)
    online_time = time.perf_counter() - start

    index_time = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        index = build_write_index(events)
        index_time = min(index_time, time.perf_counter() - start)

    timings = {}
    results = {}
    for workers in (1, 4):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            db = analyze_trace(events, workers=workers)
            best = min(best, time.perf_counter() - start)
        timings[workers] = best
        results[workers] = sorted(
            (p.routine, p.thread, p.calls, p.size_sum, p.cost_sum,
             p.induced_thread_sum, p.induced_external_sum)
            for p in db
        )
    online_snapshot = sorted(
        (p.routine, p.thread, p.calls, p.size_sum, p.cost_sum,
         p.induced_thread_sum, p.induced_external_sum)
        for p in online.db
    )
    return len(events), online_time, index_time, timings, results, online_snapshot


def test_ext_parallel_analysis(benchmark):
    (event_count, online_time, index_time, timings, results,
     online_snapshot) = run_once(benchmark, run_study)

    print()
    print(table(
        ["configuration", "time"],
        [
            ["online (single pass)", f"{online_time * 1000:.1f}ms"],
            ["offline: index pass", f"{index_time * 1000:.1f}ms"],
            ["offline: analysis, 1 worker", f"{timings[1] * 1000:.1f}ms"],
            ["offline: analysis, 4 workers", f"{timings[4] * 1000:.1f}ms"],
        ],
        title=f"Future work — parallelisable analysis ({event_count} events, "
              f"8 guest threads)",
    ))

    # exactness, sequential and pooled
    assert results[1] == online_snapshot
    assert results[4] == online_snapshot

    # the sequential, non-parallelisable index pass is a minor fraction
    assert index_time < 0.6 * timings[1], (index_time, timings[1])

    # the pooled run must not *corrupt or explode*; under the GIL it may
    # be slower than sequential, but within a small factor
    assert timings[4] < 3.0 * timings[1], timings
