"""PLDI-2012-style experiment: recover asymptotic growth rates.

The original aprof paper's central promise: from (even a single)
profiling run, plotting each routine's cost against its automatically
measured input size reveals the routine's empirical cost function —
insertion sort shows up quadratic, a linear scan linear, binary search
logarithmic, dense matrix multiply cubic — without the programmer ever
telling the profiler what "input size" means for each routine.

We run the algorithm kernels of :mod:`repro.vm.programs` over a range of
input sizes under aprof-rms, build each routine's worst-case cost plot,
and require model selection to name the right growth class.
"""

from __future__ import annotations

import random

from repro.core import EventBus, RmsProfiler
from repro.curvefit import select_model
from repro.reporting import scatter, table
from repro.vm import programs

from conftest import run_once

SIZES = [8, 12, 16, 24, 32, 48, 64, 96]


def collect_plots():
    rng = random.Random(42)
    plots = {"insertion_sort": [], "merge_sort": [], "sum_array": [],
             "binary_search": [], "binary_search_rms_vs_n": [], "matmul": [],
             "matmul_cost_vs_n": []}
    for size in SIZES:
        profiler = RmsProfiler(keep_activations=True)
        # worst case: reversed input
        programs.insertion_sort(list(range(size, 0, -1))).run(tools=EventBus([profiler]))
        record = [a for a in profiler.db.activations if a.routine == "insertion_sort"][0]
        plots["insertion_sort"].append((record.size, record.cost))

        profiler = RmsProfiler(keep_activations=True)
        programs.merge_sort([rng.randrange(10**6) for _ in range(size)]).run(
            tools=EventBus([profiler])
        )
        record = [a for a in profiler.db.activations if a.routine == "merge_sort"][0]
        plots["merge_sort"].append((record.size, record.cost))

        profiler = RmsProfiler(keep_activations=True)
        programs.sum_array([rng.randrange(100) for _ in range(size)]).run(
            tools=EventBus([profiler])
        )
        record = [a for a in profiler.db.activations if a.routine == "sum_array"][0]
        plots["sum_array"].append((record.size, record.cost))

        profiler = RmsProfiler(keep_activations=True)
        # worst case for binary search: probe a missing key
        values = list(range(0, 2 * size, 2))
        programs.binary_search(values, target=2 * size + 1).run(tools=EventBus([profiler]))
        record = [a for a in profiler.db.activations if a.routine == "binary_search"][0]
        # x = the ARRAY length here: the automatically measured rms is
        # the probe count, and plotting it against the array length is
        # what exposes the logarithmic behaviour
        plots["binary_search_rms_vs_n"].append((size, record.size))
        plots["binary_search"].append((record.size, record.cost))

    for n in (3, 4, 5, 6, 8, 10):
        profiler = RmsProfiler(keep_activations=True)
        programs.matmul(n).run(tools=EventBus([profiler]))
        record = [a for a in profiler.db.activations if a.routine == "matmul"][0]
        plots["matmul"].append((record.size, record.cost))
        plots["matmul_cost_vs_n"].append((n, record.cost))
    return plots


# Expected classes.  An input-sensitive profile plots cost against the
# routine's OWN input size (its rms), which changes the exponent one
# should expect: binary search does linear work in the cells it probes
# (the logarithm lives in how slowly rms grows with the array — the
# companion rms-vs-n plot), and matmul does x^1.5 work in its x = 2*n^2
# input cells (the companion cost-vs-n plot shows the familiar cubic).
EXPECTED = {
    "insertion_sort": {"O(n^2)", "O(n^2 log n)"},
    "merge_sort": {"O(n log n)"},
    "sum_array": {"O(n)"},
    "binary_search": {"O(n)", "O(n log n)", "O(sqrt n)"},
    "binary_search_rms_vs_n": {"O(log n)", "O(sqrt n)"},
    "matmul": {"O(n log n)", "O(n^2)"},
    "matmul_cost_vs_n": {"O(n^3)", "O(n^2 log n)"},
}


def test_2012_growth_rates(benchmark):
    plots = run_once(benchmark, collect_plots)

    rows = []
    selections = {}
    for routine, points in plots.items():
        selection = select_model(points)
        selections[routine] = selection.name
        rows.append([
            routine,
            len(points),
            selection.name,
            f"{selection.best.r2:.3f}",
        ])
    print()
    print(table(["routine", "points", "selected model", "R^2"], rows,
                title="2012-style — recovered growth classes"))
    print(scatter(plots["insertion_sort"],
                  title="insertion_sort — worst-case cost vs rms"))

    for routine, allowed in EXPECTED.items():
        assert selections[routine] in allowed, (routine, selections[routine])

    # matmul input size is 2*n^2 cells: the x axis itself confirms the
    # automatic input metric (reads both operand matrices exactly once)
    matmul_sizes = [size for size, _ in plots["matmul"]]
    assert matmul_sizes == [2 * n * n for n in (3, 4, 5, 6, 8, 10)]
