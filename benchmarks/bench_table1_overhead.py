"""Table 1: time slowdown and space overhead of the evaluated tools.

Paper: twelve SPEC OMP2012 benchmarks (four threads) under nulgrind,
memcheck, callgrind, helgrind, aprof-rms and aprof-trms; slowdowns
reported against native, space against native RSS.  Geometric means in
the paper: nulgrind 23.6x native; callgrind 64.8x; memcheck 94.1x;
aprof-rms 101.5x; aprof-trms 140.8x; helgrind 179.4x.  Space (vs
native): nulgrind 1.4x, callgrind 1.5x, memcheck 2.0x, aprof-rms 2.8x,
aprof-trms 3.3x, helgrind 4.5x.

Substrate caveat: under Valgrind the *analysis* dominates run time (the
paper's native baseline is silicon); under our Python VM the
interpretation loop dominates and per-event analysis is a modest delta
on top, so the absolute slowdown factors compress and the fine ordering
between the *comparator* tools (callgrind vs memcheck vs helgrind) is
within measurement noise.  What carries over — and is asserted — are the
paper's claims about its own artifact:

* recognising induced first-accesses costs extra: aprof-trms's analysis
  overhead exceeds aprof-rms's (the paper measures +38%);
* aprof-trms is *comparable* to the other heavyweight tools: its
  analysis overhead lies within the band the comparators span;
* nulgrind (no analysis) is the cheapest instrumented configuration;
* the encoding-independent space orderings hold: memcheck's bit-packed
  state < aprof-rms < aprof-trms <= helgrind, everything > nulgrind.
"""

from __future__ import annotations

import time

from repro.reporting import table
from repro.tools import TOOL_NAMES, make_tool
from repro.workloads import SPEC_OMP

from conftest import EventRecorder, bench_scale, geometric_mean, replay_recorded, run_once, save_result

THREADS = 4
REPEATS = 3


def _best_time(run, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-6)


def run_suite():
    scale = bench_scale() * 2.0
    rows = []
    slowdowns = {name: [] for name in TOOL_NAMES}
    space_means = {name: [] for name in TOOL_NAMES}
    for name, bench in SPEC_OMP.items():
        bench.run(tools=None, threads=THREADS, scale=scale)   # warm-up
        native_time = _best_time(lambda: bench.run(tools=None, threads=THREADS, scale=scale))
        blocks = bench.run(tools=None, threads=THREADS, scale=scale).stats.total_blocks
        row = [name, f"{native_time * 1000:.0f}ms", blocks]
        for tool_name in TOOL_NAMES:
            tool_time = _best_time(
                lambda: bench.run(tools=make_tool(tool_name), threads=THREADS, scale=scale)
            )
            tool = make_tool(tool_name)
            bench.run(tools=tool, threads=THREADS, scale=scale)
            slowdown = tool_time / native_time
            slowdowns[tool_name].append(slowdown)
            space_means[tool_name].append(max(tool.space_bytes(), 1))
            row.append(f"{slowdown:.2f}x")
        rows.append(row)
    gms = {name: geometric_mean(values) for name, values in slowdowns.items()}
    rows.append(["geo-mean", "", ""] + [f"{gms[name]:.2f}x" for name in TOOL_NAMES])
    space_gms = {name: geometric_mean(values) for name, values in space_means.items()}

    # Analysis-only comparison: replay recorded event streams directly
    # into each tool, removing interpretation and scheduling noise.
    streams = []
    for bench_name in ("350.md", "351.bwaves", "376.kdtree"):
        recorder = EventRecorder()
        SPEC_OMP[bench_name].run(tools=recorder, threads=THREADS, scale=scale)
        streams.append(recorder.events)
    replay_times = {}
    for tool_name in TOOL_NAMES:
        best = float("inf")
        for _ in range(REPEATS + 2):
            start = time.perf_counter()
            for events in streams:
                replay_recorded(events, make_tool(tool_name))
            best = min(best, time.perf_counter() - start)
        replay_times[tool_name] = best
    return rows, gms, space_gms, replay_times


def test_table1_overhead(benchmark):
    rows, gms, space_gms, replay_times = run_once(benchmark, run_suite)
    headers = ["benchmark", "native", "blocks"] + TOOL_NAMES
    print()
    print(table(headers, rows, title="Table 1 — slowdown vs native (12 SPEC-OMP-like, 4 threads)"))
    space_rows = [[name, f"{space_gms[name] / 1024:.1f} KiB"] for name in TOOL_NAMES]
    print(table(["tool", "geo-mean shadow state"], space_rows,
                title="Table 1 — analysis state (space)"))

    # The end-to-end slowdowns are reported; ordering assertions run on
    # the noise-free replay measurements below — wall-clock deltas of a
    # few percent flap between runs on a shared machine.
    for name in TOOL_NAMES:
        assert gms[name] > 0.85, (name, gms)  # sanity: none faster than 0.85x native

    # every real analysis costs more than the no-op baseline (replay)
    for name in ("memcheck", "callgrind", "helgrind", "aprof-rms", "aprof-trms"):
        assert replay_times[name] > replay_times["nulgrind"], (name, replay_times)

    # the paper's headline: recognising induced first-accesses costs
    # extra over plain rms profiling (paper: +38% run time).  Measured
    # on recorded event streams replayed directly into the analyses, so
    # interpretation noise cannot mask the difference.
    replay_rows = [[name, f"{replay_times[name] * 1000:.1f}ms"] for name in TOOL_NAMES]
    print(table(["tool", "analysis-only replay"], replay_rows,
                title="Table 1 — analysis cost on recorded event streams"))
    save_result("table1_overhead", {
        "slowdown_geomeans": gms,
        "space_geomeans_bytes": space_gms,
        "replay_times_seconds": replay_times,
    })
    trms_over_rms = replay_times["aprof-trms"] / replay_times["aprof-rms"]
    print(f"trms analysis cost vs rms: +{100 * (trms_over_rms - 1):.0f}% (paper: +38%)")
    assert trms_over_rms > 1.05, replay_times

    # "overhead comparable to other prominent heavyweight tools": the
    # trms analysis cost sits inside (a generous envelope of) the band
    # spanned by the comparator analyses
    band_low = min(replay_times[name] for name in ("memcheck", "callgrind", "helgrind"))
    band_high = max(replay_times[name] for name in ("memcheck", "callgrind", "helgrind"))
    assert 0.5 * band_low <= replay_times["aprof-trms"] <= 3.0 * band_high, replay_times

    # space — the paper's orderings that are encoding-independent:
    # nulgrind keeps (almost) nothing; memcheck's bit-packed A/V states
    # undercut the profilers' word-sized timestamps (the paper credits
    # memcheck's compression for beating aprof); the trms global write
    # shadow costs over rms; helgrind's per-cell concurrency metadata is
    # the largest of all.
    for name in ("memcheck", "callgrind", "helgrind", "aprof-rms", "aprof-trms"):
        assert space_gms["nulgrind"] < space_gms[name], space_gms
    assert space_gms["memcheck"] < space_gms["aprof-rms"], space_gms
    assert space_gms["aprof-rms"] < space_gms["aprof-trms"], space_gms
    assert space_gms["aprof-trms"] <= space_gms["helgrind"], space_gms
