"""Figure 5: worst-case running time plots of vips' ``im_generate``.

Paper: the same misleading-vs-true contrast as Figure 4, but the induced
first-accesses come from *thread* interaction: im_generate consumes its
input through small reusable regions refilled by other pipeline threads,
so its rms is pinned near the region size while its trms equals the true
strip size.

Here: the vipslike pipeline over growing strip sizes with a fixed
16-cell window.  Asserted shape:

* the trms plot grows linearly with the strip size;
* the rms axis is constant at the window size — zero spread against a
  several-fold cost increase (the degenerate, misleading plot);
* im_generate's induced input is thread-induced, not external.
"""

from __future__ import annotations

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.curvefit import classify_growth
from repro.reporting import scatter, table
from repro.vipslike import vips_pipeline

from conftest import run_once

STRIP_SIZES = [16, 32, 64, 96, 128, 192, 256]
WINDOW = 16


def pipeline_points():
    rms_points = []
    trms_points = []
    induced = []
    for strip in STRIP_SIZES:
        rms = RmsProfiler(keep_activations=True)
        trms = TrmsProfiler(keep_activations=True)
        scenario = vips_pipeline(workers=1, strips_per_worker=3,
                                 strip_cells=strip, window=WINDOW)
        scenario.run(tools=EventBus([rms, trms]), timeslice=13)
        rms_gen = [a for a in rms.db.activations if a.routine.startswith("im_generate")]
        trms_gen = [a for a in trms.db.activations if a.routine.startswith("im_generate")]
        rms_points.append((max(a.size for a in rms_gen), max(a.cost for a in rms_gen)))
        trms_points.append((max(a.size for a in trms_gen), max(a.cost for a in trms_gen)))
        induced.append((
            sum(a.induced_thread for a in trms_gen),
            sum(a.induced_external for a in trms_gen),
        ))
    return rms_points, trms_points, induced


def test_fig05_im_generate(benchmark):
    rms_points, trms_points, induced = run_once(benchmark, pipeline_points)

    print()
    print(table(
        ["strip", "rms", "trms", "cost"],
        [
            [strip, rms[0], trms[0], trms[1]]
            for strip, rms, trms in zip(STRIP_SIZES, rms_points, trms_points)
        ],
        title="Figure 5 — im_generate input sizes",
    ))
    print(scatter(rms_points, title="Figure 5a — cost vs rms (pinned at the window)",
                  xlabel="rms", ylabel="cost"))
    print(scatter(trms_points, title="Figure 5b — cost vs trms (true, linear)",
                  xlabel="trms", ylabel="cost"))

    growth = classify_growth(trms_points)
    print(f"trms growth class: {growth}")
    assert growth in ("O(n)", "O(n log n)"), growth

    # rms pinned at the window size for every strip size
    assert {p[0] for p in rms_points} == {WINDOW}
    # while cost grows many-fold: the rms plot is a vertical stack
    assert rms_points[-1][1] / rms_points[0][1] > 5.0

    # the interaction is with threads, not devices
    for thread_induced, external in induced:
        assert thread_induced > 0
        assert external == 0
