"""Ablation: three-level shadow tables vs plain hashed shadows (§5).

The paper's implementation keeps timestamps in three-level lookup tables
so that only touched chunks materialise; this ablation compares that
structure against the dict-backed shadow on identical event streams:

* results are bit-identical (the differential tests prove it per event;
  here we re-confirm end to end);
* the chunked shadow's reported footprint tracks the touched chunks, so
  for workloads with clustered address spaces it stays proportional to
  what was accessed — and both shadow flavours survive a sparse,
  far-apart address space without materialising the gap.
"""

from __future__ import annotations

import time

from repro.core import ShadowMemory, TrmsProfiler
from repro.reporting import table
from repro.workloads import benchmark as get_benchmark

from conftest import EventRecorder, replay_recorded, run_once

BENCHES = ["351.bwaves", "350.md", "367.imagick"]
REPEATS = 3


def run_ablation():
    rows = []
    identical = []
    for name in BENCHES:
        recorder = EventRecorder()
        get_benchmark(name).run(tools=recorder, threads=4, scale=1.0)
        events = recorder.events
        results = {}
        for mode, chunked in (("dict", False), ("3-level", True)):
            best = float("inf")
            for _ in range(REPEATS):
                profiler = TrmsProfiler(use_chunked_shadow=chunked)
                start = time.perf_counter()
                replay_recorded(events, profiler)
                best = min(best, time.perf_counter() - start)
            results[mode] = (profiler, best)
        dict_profiler, dict_time = results["dict"]
        chunk_profiler, chunk_time = results["3-level"]
        identical.append(
            sorted((p.routine, p.thread, p.calls, p.size_sum, p.cost_sum)
                   for p in dict_profiler.db)
            == sorted((p.routine, p.thread, p.calls, p.size_sum, p.cost_sum)
                      for p in chunk_profiler.db)
        )
        chunks = chunk_profiler.wts.chunks_allocated + sum(
            state.ts.chunks_allocated for state in chunk_profiler.states.values()
        )
        rows.append([
            name,
            len(events),
            f"{dict_time * 1000:.1f}ms",
            f"{chunk_time * 1000:.1f}ms",
            f"{dict_profiler.space_bytes() / 1024:.1f}K",
            f"{chunk_profiler.space_bytes() / 1024:.1f}K",
            chunks,
        ])
    return rows, identical


def test_ablation_shadow(benchmark):
    rows, identical = run_once(benchmark, run_ablation)
    print()
    print(table(
        ["benchmark", "events", "dict time", "3-level time",
         "dict space", "3-level space", "chunks"],
        rows, title="Ablation — shadow memory structure",
    ))
    assert all(identical)
    # the 3-level structure materialises a handful of chunks, not the
    # address span: our kernels spread data over ~0x70000 cells yet only
    # the touched chunks exist
    for row in rows:
        assert 0 < row[6] < 64, row

    # sparse far-apart addresses stay cheap in both representations
    sparse = ShadowMemory(chunk_size=256, secondary_size=64)
    for addr in (0, 10**6, 10**12, 10**15):
        sparse.set(addr, 1)
    assert sparse.chunks_allocated == 4
    assert sparse.space_bytes() == 4 * 256 * ShadowMemory.ENTRY_BYTES
