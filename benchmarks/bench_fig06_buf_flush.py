"""Figure 6: curve fitting on ``buf_flush_buffered_writes``.

Paper: the trms plot of MySQL's flush routine reveals a *super-linear*
running-time trend (confirmed by standard curve fitting), which the rms
plot misses, only suggesting linear growth.

Mechanism reproduced here: the flusher drains however many change
records client threads have accumulated — its true input (trms) is the
batch, thread-induced, unbounded; its rms is pinned near the fixed ring
it drains through.  The flush coalesces writes with an insertion sort
over the batch, so cost grows quadratically in the batch size.

Shape asserted:

* the trms cost plot is super-linear (power-law exponent well above 1,
  and the model family prefers a super-linear class);
* the rms axis is capped by the ring (its spread is bounded by the ring
  cells) even as batches grow far beyond it.
"""

from __future__ import annotations

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.curvefit import fit_power_law, select_model
from repro.minidb import Database
from repro.pytrace import TraceSession, TracedThread
from repro.reporting import scatter, table

from conftest import run_once, save_result

RING_SLOTS = 6
BATCH_TARGETS = [2, 4, 8, 16, 24, 32, 48]


def flush_batches():
    """Generate flush activations with controlled batch sizes.

    For each target batch size we run clients that insert exactly that
    many records while the flusher is blocked behind the pool lock, then
    let one flush drain them all — a deterministic version of the
    batching that arises under concurrent load.
    """
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([rms, trms]))
    with session:
        db = Database(session, page_size=9, pool_frames=4,
                      ring_slots=RING_SLOTS, record_width=4)
        db.execute("CREATE TABLE t (a, b)")
        change_buffer = db.change_buffer
        row = 0
        for target in BATCH_TARGETS:
            # a writer thread produces `target` records; whenever the
            # ring fills it blocks until the drainer frees slots
            def produce(count, start):
                for index in range(start, start + count):
                    db.execute(f"INSERT INTO t VALUES ({index}, {index})")

            records = target  # each INSERT makes 2 records (data + header)
            change_buffer.flusher_active = True
            writer = TracedThread(session, produce, args=(records, row))
            writer.start()
            row += records
            # one flush activation drains the whole accumulated batch
            # (including what the writer appends while we drain)
            change_buffer.used.acquire()
            change_buffer.buf_flush_buffered_writes()
            writer.join()
            change_buffer.flusher_active = False
            db.flush_now()   # clear any leftovers outside the measurement
    rms_records = [a for a in rms.db.activations
                   if a.routine == "buf_flush_buffered_writes"]
    trms_records = [a for a in trms.db.activations
                    if a.routine == "buf_flush_buffered_writes"]
    return rms_records, trms_records


def test_fig06_buf_flush(benchmark):
    rms_records, trms_records = run_once(benchmark, flush_batches)

    # keep the measured flushes (one per target, the largest ones)
    pairs = sorted(zip(rms_records, trms_records), key=lambda p: p[1].size)
    rms_points = [(r.size, r.cost) for r, _ in pairs]
    trms_points = [(t.size, t.cost) for _, t in pairs]

    print()
    print(table(
        ["rms", "trms", "cost", "induced-thread"],
        [[r.size, t.size, t.cost, t.induced_thread] for r, t in pairs],
        title="Figure 6 — buf_flush_buffered_writes activations",
    ))
    print(scatter(rms_points, title="Figure 6a — cost vs rms (capped axis)",
                  xlabel="rms", ylabel="cost"))
    print(scatter(trms_points, title="Figure 6b — cost vs trms (super-linear)",
                  xlabel="trms", ylabel="cost"))

    big = [p for p in trms_points if p[0] > 0]
    fit = fit_power_law(big)
    selection = select_model(big)
    print(f"trms power-law exponent: {fit.exponent:.2f}; "
          f"model selection: {selection.name}")
    save_result("fig06_buf_flush", {
        "rms_points": rms_points,
        "trms_points": trms_points,
        "exponent": fit.exponent,
        "selected_model": selection.name,
    })
    assert fit.exponent > 1.15, fit
    assert selection.name not in ("O(1)", "O(log n)", "O(sqrt n)", "O(n)"), selection.name

    # the rms axis is capped by the fixed ring footprint
    ring_cells = RING_SLOTS * (3 + 4) + 8
    assert max(p[0] for p in rms_points) <= ring_cells
    assert max(p[0] for p in trms_points) > 1.5 * max(p[0] for p in rms_points)
