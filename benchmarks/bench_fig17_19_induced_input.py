"""Figures 17, 18 and 19: external vs thread-induced input.

Figure 17 (global): per benchmark, the percentage of induced
first-accesses that are thread-induced vs external, each access counted
once, benchmarks sorted by decreasing thread share.  The paper's
observation: the SPEC OMP2012 benchmarks cluster at the thread-induced
end (all >= 69% thread input), while stream-processing workloads
(mysqlslap, blackscholes-style) sit at the external end.

Figures 18/19 (per routine): tail curves "x% of routines have
thread-induced (resp. external) input >= y%".

Asserted shape:

* at least 10 of the 12 SPEC-like entries have >= 69% thread-induced
  input, and they occupy the top of the sorted order;
* external-dominant benchmarks exist (blackscholes, mysqlslap);
* per-routine: dedup has a meaningful fraction of routines with >= 20%
  thread-induced input (the paper reads 16% of routines >= 20% off
  Figure 18), and both curve families are monotone tails.
"""

from __future__ import annotations

from repro.core import EventBus, TrmsProfiler
from repro.minidb import minislap
from repro.pytrace import TraceSession
from repro.reporting import bars, external_input_curve, induced_breakdown, thread_input_curve
from repro.workloads import PARSEC, SPEC_OMP

from conftest import run_once, save_result

PARSEC_PICK = ["blackscholes", "canneal", "dedup", "fluidanimate", "swaptions", "vips"]


def profile_everything():
    databases = {}
    for name, bench in SPEC_OMP.items():
        _, trms_db, _ = bench.profile(threads=4, scale=0.8)
        databases[name] = trms_db
    for name in PARSEC_PICK:
        _, trms_db, _ = PARSEC[name].profile(threads=4, scale=1.0)
        databases[name] = trms_db
    trms = TrmsProfiler()
    session = TraceSession(tools=EventBus([trms]))
    with session:
        minislap(session, clients=4, queries_per_client=10, preload_rows=12)
    databases["mysqlslap"] = trms.db
    return databases


def test_fig17_19_induced_input(benchmark):
    databases = run_once(benchmark, profile_everything)

    breakdown = induced_breakdown(databases)
    print()
    print(bars([(name, thread_pct) for name, thread_pct, _ in breakdown],
               title="Figure 17 — thread-induced share per benchmark "
                     "(rest is external)", unit="%"))

    save_result("fig17_induced_breakdown",
                [{"benchmark": n, "thread_pct": t, "external_pct": e}
                 for n, t, e in breakdown])
    shares = {name: thread_pct for name, thread_pct, _ in breakdown}

    # the SPEC cluster: at least 10 of 12 entries >= 69% thread-induced
    spec_dominant = [name for name in SPEC_OMP if shares.get(name, 0) >= 69.0]
    assert len(spec_dominant) >= 10, sorted(shares.items())

    # the sorted order starts with SPEC entries (the paper's clustering)
    top_half = [name for name, _, _ in breakdown[: len(SPEC_OMP)]]
    spec_in_top = sum(1 for name in top_half if name in SPEC_OMP)
    assert spec_in_top >= 8, breakdown

    # external-dominant benchmarks anchor the other end
    assert shares["blackscholes"] < 50.0, shares
    assert shares["mysqlslap"] < 69.0, shares

    # Figures 18/19: per-routine tail curves
    dedup_curve = thread_input_curve(databases["dedup"])
    assert dedup_curve, "dedup must have routines with induced input"
    share_20 = max((x for x, y in dedup_curve if y >= 20.0), default=0.0)
    print(f"Figure 18 — dedup: {share_20:.0f}% of induced-input routines have "
          f">= 20% thread-induced input")
    assert share_20 >= 15.0, dedup_curve

    for name in ("mysqlslap", "vips", "dedup"):
        for curve in (thread_input_curve(databases[name]),
                      external_input_curve(databases[name])):
            ys = [y for _, y in curve]
            assert ys == sorted(ys, reverse=True), (name, curve)   # tails decrease
            assert all(0.0 <= y <= 100.0 for y in ys)

    # the external curve of mysqlslap dominates vips's at the top
    mysql_external = external_input_curve(databases["mysqlslap"])
    assert mysql_external and mysql_external[0][1] > 50.0, mysql_external
