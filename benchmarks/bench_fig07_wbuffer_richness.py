"""Figure 7: profile richness of vips' ``wbuffer_write_thread``.

Paper: the routine was called 110 times, yet under rms all input sizes
collapsed onto two distinct values (67 and 69); counting external input
(7b) and external + thread input (7c) spreads the activations over many
distinct trms values, making the cost trend interpretable.

Here: the vipslike write-behind thread drains variable-size batches of
worker tiles through one slot and reads device metadata per strip.
Asserted shape:

* rms: at most two distinct values, right above the 64-cell tile;
* trms restricted to external input only: strictly more distinct values
  than rms;
* full trms (external + thread): at least as many again, with a wider
  spread, and induced accesses of both kinds present.
"""

from __future__ import annotations

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.reporting import scatter, table
from repro.vipslike import SLOT_CELLS, vips_pipeline

from conftest import run_once

RUNS = [(2, 8, 9), (3, 8, 7), (2, 10, 13), (3, 6, 5)]


def wbuffer_profiles():
    rms_records = []
    external_records = []
    trms_records = []
    for workers, strips, timeslice in RUNS:
        rms = RmsProfiler(keep_activations=True)
        # Figure 7b's exact configuration: trms with external input only
        external = TrmsProfiler(keep_activations=True, count_thread_induced=False)
        trms = TrmsProfiler(keep_activations=True)
        scenario = vips_pipeline(workers=workers, strips_per_worker=strips)
        scenario.run(tools=EventBus([rms, external, trms]), timeslice=timeslice)
        rms_records += [a for a in rms.db.activations
                        if a.routine == "wbuffer_write_thread"]
        external_records += [a for a in external.db.activations
                             if a.routine == "wbuffer_write_thread"]
        trms_records += [a for a in trms.db.activations
                         if a.routine == "wbuffer_write_thread"]
    return rms_records, external_records, trms_records


def test_fig07_wbuffer_richness(benchmark):
    rms_records, external_records, trms_records = run_once(benchmark, wbuffer_profiles)

    rms_sizes = [a.size for a in rms_records]
    trms_sizes = [a.size for a in trms_records]
    external_only = [a.size for a in external_records]

    print()
    print(table(
        ["view", "calls", "distinct sizes", "min", "max"],
        [
            ["rms (7a)", len(rms_sizes), len(set(rms_sizes)),
             min(rms_sizes), max(rms_sizes)],
            ["trms external only (7b)", len(external_only),
             len(set(external_only)), min(external_only), max(external_only)],
            ["trms full (7c)", len(trms_sizes), len(set(trms_sizes)),
             min(trms_sizes), max(trms_sizes)],
        ],
        title="Figure 7 — wbuffer_write_thread profile richness",
    ))
    print(scatter([(a.size, a.cost) for a in rms_records],
                  title="Figure 7a — rms plot (collapsed)", xlabel="rms"))
    print(scatter([(a.size, a.cost) for a in trms_records],
                  title="Figure 7c — trms plot (rich)", xlabel="trms"))

    # 7a: the rms collapses onto (at most) two values, just above the tile
    assert len(set(rms_sizes)) <= 2, sorted(set(rms_sizes))
    assert all(SLOT_CELLS <= size <= SLOT_CELLS + 8 for size in rms_sizes)

    # 7b/7c: both induced views are strictly richer than the rms view
    # (their relative richness varies run to run, as in the paper, where
    # distinct rms values may merge or split under trms)
    assert len(set(external_only)) > len(set(rms_sizes))
    assert len(set(trms_sizes)) > len(set(rms_sizes))
    assert max(trms_sizes) > 2 * max(rms_sizes)

    # the paper: 99.9% of this routine's input is induced
    for record in trms_records:
        induced = record.induced_thread + record.induced_external
        assert induced >= 0.9 * record.size
