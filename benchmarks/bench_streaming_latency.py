"""Streaming pipeline latency: checkpoint freshness under live load.

The live pipeline's promise is twofold: the final profile is *free*
(byte-identical to batch), and partial profiles are *fresh*.  This
bench measures both on real workload traces replayed through the live
writer while a :class:`~repro.streaming.LiveProfileSession` co-tails:

* checkpoint lag (ms between the oldest unsnapshotted chunk being fed
  and the checkpoint that covers it), p50/p99 over the run — the gate
  holds the p99 as an *inverted* latency gate (growth is regression);
* streamed analysis throughput (events/s through tail→decode→feed);
* the streamed final dump's SHA-256, which must equal the batch flat
  kernel's (re-checked by the gate like the kernel-throughput digests).
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
import time

from repro.core import replay
from repro.core.flatkernel import analyze_events_flat
from repro.core.profile_data import ProfileDatabase
from repro.farm import BinaryTraceWriter, live_names_path, read_binary_trace, save_profile
from repro.reporting import table
from repro.streaming import LiveProfileSession, checkpoint_dump_bytes
from repro.workloads import benchmark as get_benchmark

from conftest import bench_scale, run_once, save_result

WORKLOADS = ("376.kdtree", "350.md")
THREADS = 2
CHUNK_EVENTS = 256
CHECKPOINT_EVENTS = 512
#: events replayed between session polls — a steady producer
BURST_EVENTS = 512


def record_events(name: str, scale: float):
    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer, chunk_events=4096)
    get_benchmark(name).run(tools=writer, threads=THREADS, scale=scale)
    writer.close()
    buffer.seek(0)
    return read_binary_trace(buffer)


def batch_digest(events) -> str:
    db = ProfileDatabase()
    analyze_events_flat(events, db)
    stream = io.StringIO()
    save_profile(db, stream)
    return hashlib.sha256(stream.getvalue().encode("utf-8")).hexdigest()


def percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def stream_workload(events, tmp_dir: str):
    """Replay ``events`` live, co-tailing; returns (session, seconds)."""
    trace = os.path.join(tmp_dir, "live.rpt2")
    session = LiveProfileSession(
        trace, os.path.join(tmp_dir, "ckpt"),
        checkpoint_events=CHECKPOINT_EVENTS, checkpoint_seconds=1e9)
    start = time.perf_counter()
    with open(trace, "wb") as stream, \
            open(live_names_path(trace), "w", encoding="utf-8") as names:
        writer = BinaryTraceWriter(stream, chunk_events=CHUNK_EVENTS,
                                   names_stream=names)
        for offset in range(0, len(events), BURST_EVENTS):
            replay(events[offset:offset + BURST_EVENTS], writer)
            session.step()
        writer.close()
    session.finalize()
    return session, time.perf_counter() - start


def run_study(scale: float):
    study = {}
    for name in WORKLOADS:
        events = record_events(name, scale)
        with tempfile.TemporaryDirectory() as tmp_dir:
            session, seconds = stream_workload(events, tmp_dir)
            streamed = checkpoint_dump_bytes(os.path.join(tmp_dir, "ckpt"))
        study[name] = {
            "events": len(events),
            "seconds": seconds,
            "checkpoints": len(session.checkpoints),
            "lag_p50_ms": percentile(session.lag_samples_ms, 0.50),
            "lag_p99_ms": percentile(session.lag_samples_ms, 0.99),
            "streamed_sha": hashlib.sha256(streamed).hexdigest(),
            "batch_sha": batch_digest(events),
        }
    return study


def test_streaming_latency(benchmark, scale):
    study = run_once(benchmark, lambda: run_study(scale))

    rows = []
    latency = {}
    throughput = {}
    hashes = {}
    for name, data in study.items():
        events_per_s = data["events"] / data["seconds"]
        throughput[f"stream_events_per_s:{name}"] = round(events_per_s)
        latency[f"checkpoint_p99:{name}"] = round(data["lag_p99_ms"], 2)
        hashes[name] = data["streamed_sha"]
        rows.append([
            name, data["events"], data["checkpoints"],
            f"{data['lag_p50_ms']:.1f}ms", f"{data['lag_p99_ms']:.1f}ms",
            f"{events_per_s:,.0f}",
        ])
    print()
    print(table(
        ["workload", "events", "checkpoints", "lag p50", "lag p99", "events/s"],
        rows,
        title="Streaming pipeline — checkpoint freshness and throughput",
    ))

    # exactness is unconditional: streaming must equal batch, byte for byte
    for name, data in study.items():
        assert data["streamed_sha"] == data["batch_sha"], \
            f"{name}: streamed final profile differs from batch"

    # the shape assertion: checkpoints are cut (freshness exists at all)
    # and lag stays bounded by seconds, not by the run length
    for name, data in study.items():
        assert data["checkpoints"] >= 2, f"{name}: no mid-run checkpoints"
        assert data["lag_p99_ms"] < data["seconds"] * 1000, \
            f"{name}: checkpoint lag as large as the whole run"

    save_result("streaming_latency", {
        "workloads": study,
        "gate": {
            "scale": bench_scale(),
            "latency_ms": latency,
            "throughput": throughput,
            "profile_sha256": hashes,
        },
    })
