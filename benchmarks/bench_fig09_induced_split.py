"""Figure 9: thread-induced vs external input, routine by routine.

Paper: for every routine of MySQL and vips, the percentage of induced
first-accesses split between external and thread-induced input, sorted
by decreasing induced share.  A first look reveals that MySQL routines'
induced input is mostly *external* (I/O through the kernel) while vips
routines' is mostly *thread* input — and charts of this kind come out of
the profiler automatically.

Asserted shape:

* both applications have routines whose input is almost entirely
  induced (the I/O / communication layer);
* aggregating per-routine shares: minidb leans external, vipslike leans
  thread-induced;
* scan/flush/protocol routines appear with the expected character
  (mysql_select external-dominant, buf_flush and send_eof
  thread-dominant, im_generate thread-dominant).
"""

from __future__ import annotations

from repro.core import EventBus, TrmsProfiler, induced_split_by_routine
from repro.minidb import minislap
from repro.pytrace import TraceSession
from repro.reporting import table
from repro.vipslike import vips_pipeline

from conftest import run_once


def profile_applications():
    trms_db_mysql = None
    trms = TrmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([trms]))
    with session:
        minislap(session, clients=4, queries_per_client=10, insert_ratio=0.5,
                 preload_rows=12)
    trms_db_mysql = trms.db

    trms_vips = TrmsProfiler(keep_activations=True)
    scenario = vips_pipeline(workers=3, strips_per_worker=8)
    scenario.run(tools=EventBus([trms_vips]), timeslice=9)
    return trms_db_mysql, trms_vips.db


def rows_for(db, label):
    split = induced_split_by_routine(db)
    merged = db.merged()
    rows = []
    for routine, (thread_pct, external_pct) in sorted(
        split.items(), key=lambda item: -(item[1][0] + item[1][1])
    ):
        induced_share = 100.0 * merged[routine].induced_sum / max(merged[routine].size_sum, 1)
        rows.append([label, routine, f"{induced_share:.0f}%",
                     f"{thread_pct:.0f}%", f"{external_pct:.0f}%"])
    return rows, split


def test_fig09_induced_split(benchmark):
    mysql_db, vips_db = run_once(benchmark, profile_applications)

    mysql_rows, mysql_split = rows_for(mysql_db, "minidb")
    vips_rows, vips_split = rows_for(vips_db, "vipslike")
    print()
    print(table(
        ["app", "routine", "induced share", "thread %", "external %"],
        mysql_rows + vips_rows,
        title="Figure 9 — per-routine induced input split",
    ))

    # both applications expose heavily-induced routines
    mysql_merged = mysql_db.merged()
    heavy_mysql = [r for r, p in mysql_merged.items()
                   if p.size_sum and p.induced_sum / p.size_sum > 0.8]
    assert heavy_mysql, "minidb should have induced-dominated routines"

    # the named case-study routines behave as the paper describes
    assert mysql_split["mysql_select"][1] > 50.0        # external-dominant
    assert mysql_split["buf_flush_buffered_writes"][0] > 50.0   # thread
    assert mysql_split["send_eof"][0] > 50.0                    # thread
    im_generate = [r for r in vips_split if r.startswith("im_generate")]
    assert im_generate
    for routine in im_generate:
        assert vips_split[routine][0] > 90.0            # thread-dominant

    # per-application lean: average external share higher in minidb,
    # average thread share higher in vipslike
    def mean_external(split):
        return sum(pct for _, pct in split.values()) / len(split)

    def mean_thread(split):
        return sum(pct for pct, _ in split.values()) / len(split)

    assert mean_external(mysql_split) > mean_external(vips_split)
    assert mean_thread(vips_split) > mean_thread(mysql_split)
