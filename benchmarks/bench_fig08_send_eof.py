"""Figure 8: workload plots of ``Protocol::send_eof``.

Paper: workload plots (activation count per distinct input size) of the
MySQL EOF-packet routine under rms vs trms.  Richer trms data gives a
more accurate characterisation of the workloads the routine actually
serves: under rms, repeat queries against the same connection look
identical; under trms, every cross-thread status update shows up.

Here: a minislap run (concurrent clients, mixed INSERT/SELECT).
Asserted shape:

* send_eof is activated once per SELECT;
* the trms workload plot has at least as many distinct sizes as the rms
  plot, and strictly more activations-at-distinct-sizes overall;
* send_eof's induced input is predominantly thread-induced (the shared
  status counters written by other connections).
"""

from __future__ import annotations

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.minidb import minislap
from repro.pytrace import TraceSession
from repro.reporting import scatter, table

from conftest import run_once

CLIENTS = 4
QUERIES = 14


def slap_run():
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([rms, trms]))
    with session:
        report = minislap(session, clients=CLIENTS, queries_per_client=QUERIES,
                          insert_ratio=0.4, preload_rows=10)
    rms_records = [a for a in rms.db.activations if a.routine == "send_eof"]
    trms_records = [a for a in trms.db.activations if a.routine == "send_eof"]
    return report, rms_records, trms_records


def workload_plot(records):
    counts = {}
    for record in records:
        counts[record.size] = counts.get(record.size, 0) + 1
    return sorted(counts.items())


def test_fig08_send_eof(benchmark):
    report, rms_records, trms_records = run_once(benchmark, slap_run)

    rms_plot = workload_plot(rms_records)
    trms_plot = workload_plot(trms_records)
    print()
    print(table(
        ["view", "activations", "distinct sizes"],
        [
            ["rms (8a)", len(rms_records), len(rms_plot)],
            ["trms (8b)", len(trms_records), len(trms_plot)],
        ],
        title="Figure 8 — send_eof workload characterisation",
    ))
    print(scatter(rms_plot, title="Figure 8a — workload plot (rms)",
                  xlabel="rms", ylabel="activations"))
    print(scatter(trms_plot, title="Figure 8b — workload plot (trms)",
                  xlabel="trms", ylabel="activations"))

    # one EOF per SELECT, in both views
    assert len(rms_records) == len(trms_records)
    assert len(rms_records) >= CLIENTS   # at least some SELECTs ran
    assert report.rows_received > 0

    # richer workload characterisation under trms: the rms collapses all
    # EOFs onto one size while the trms separates them by the concurrent
    # status activity each one absorbed
    assert len(trms_plot) > len(rms_plot)
    assert max(size for size, _ in trms_plot) > max(size for size, _ in rms_plot)

    # the status counters other connections bump are the routine's input
    thread_induced = sum(a.induced_thread for a in trms_records)
    external = sum(a.induced_external for a in trms_records)
    assert thread_induced > external
    assert thread_induced > 0
