"""Figure 14: time and space overhead as a function of the thread count.

Paper: average slowdown and space overhead relative to nulgrind for 1, 2,
4, 8, 16 OpenMP threads.  Observations the paper highlights:

* all tools scale properly; the slowdown *decreases slightly* with more
  threads (instrumentation amortised over serialized execution);
* callgrind/memcheck space is roughly constant in the thread count;
* aprof-trms (and helgrind) space grows with threads — but sublinearly,
  because the three-level shadow tables only materialise what each
  thread touches.

Asserted shape:

* aprof-trms time relative to nulgrind stays within a tight band across
  thread counts (no blow-up);
* aprof-trms total shadow space grows with the thread count but clearly
  sublinearly (8 threads cost far less than 8x the 1-thread space);
* callgrind space stays flat (its state is per-routine, not per-thread).
"""

from __future__ import annotations

import time

from repro.reporting import table
from repro.tools import make_tool
from repro.workloads import benchmark as get_benchmark

from conftest import bench_scale, geometric_mean, run_once

THREAD_COUNTS = [1, 2, 4, 8]
BENCHES = ["350.md", "352.nab", "360.ilbdc", "376.kdtree"]
TOOLS = ["nulgrind", "callgrind", "memcheck", "aprof-rms", "aprof-trms", "helgrind"]


def sweep():
    scale = bench_scale()
    times = {tool: {} for tool in TOOLS}
    spaces = {tool: {} for tool in TOOLS}
    for threads in THREAD_COUNTS:
        for tool_name in TOOLS:
            per_bench_time = []
            per_bench_space = []
            for bench_name in BENCHES:
                bench = get_benchmark(bench_name)
                tool = make_tool(tool_name)
                start = time.perf_counter()
                machine = bench.run(tools=tool, threads=threads, scale=scale)
                elapsed = time.perf_counter() - start
                per_bench_time.append(elapsed / max(machine.stats.total_blocks, 1))
                per_bench_space.append(max(tool.space_bytes(), 1))
            times[tool_name][threads] = geometric_mean(per_bench_time)
            spaces[tool_name][threads] = geometric_mean(per_bench_space)
    return times, spaces


def test_fig14_thread_scaling(benchmark):
    times, spaces = run_once(benchmark, sweep)

    time_rows = []
    space_rows = []
    for tool in TOOLS:
        time_rows.append(
            [tool] + [f"{times[tool][t] / times['nulgrind'][t]:.2f}" for t in THREAD_COUNTS]
        )
        space_rows.append(
            [tool] + [f"{spaces[tool][t] / 1024:.1f}K" for t in THREAD_COUNTS]
        )
    headers = ["tool"] + [f"{t}T" for t in THREAD_COUNTS]
    print()
    print(table(headers, time_rows,
                title="Figure 14a — time per block vs nulgrind, by thread count"))
    print(table(headers, space_rows,
                title="Figure 14b — shadow space, by thread count"))

    # time: trms relative cost stays in a band across thread counts
    ratios = [times["aprof-trms"][t] / times["nulgrind"][t] for t in THREAD_COUNTS]
    assert max(ratios) / min(ratios) < 2.5, ratios

    # space: trms grows with threads (per-thread shadows) ...
    trms_space = [spaces["aprof-trms"][t] for t in THREAD_COUNTS]
    assert trms_space[-1] > trms_space[0], trms_space
    # ... but sublinearly: 8 threads cost far less than 8x one thread
    assert trms_space[-1] < 6.0 * trms_space[0], trms_space

    # callgrind's state does not depend on concurrency
    callgrind_space = [spaces["callgrind"][t] for t in THREAD_COUNTS]
    assert max(callgrind_space) < 2.0 * min(callgrind_space), callgrind_space

    # helgrind's concurrency metadata exceeds trms's at every thread count
    for threads in THREAD_COUNTS[1:]:
        assert spaces["helgrind"][threads] >= spaces["aprof-trms"][threads]
