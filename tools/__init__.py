"""Repository tooling that is not part of the ``repro`` package.

``python -m tools.bench_gate`` — the CI benchmark-regression gate; see
``docs/KERNEL.md`` for the workflow and ``benchmarks/baselines/`` for
the committed reference envelopes.
"""
