"""Benchmark-regression gate: diff fresh bench envelopes against baselines.

The gated benches (``benchmarks/bench_kernel_throughput.py``,
``benchmarks/bench_farm_speedup.py``) write ``repro-bench/1`` envelopes
whose payload carries a ``gate`` section::

    "gate": {
        "scale":          <REPRO_BENCH_SCALE the numbers were taken at>,
        "ratios":         {name: value},   # machine-portable (e.g. flat/classic
                                           # speedup) — gated by --tolerance
        "throughput":     {name: value},   # absolute events/s — informational
                                           # unless --absolute is given
        "latency_ms":     {name: value},   # e.g. the slap swarm's p99 upload
                                           # latency — gated like a ratio but
                                           # INVERTED (growth is the regression)
        "slo":            {name: burn},    # server-reported SLO burn rates
                                           # (repro slap --json) — inverted
                                           # like latency, plus a hard fail
                                           # when any fresh burn reaches 1.0
                                           # (the budget is spent regardless
                                           # of what the baseline burned)
        "profile_sha256": {name: digest},  # profile-dump hashes — must match
    }

This module compares the envelopes in the results directory against the
committed ``benchmarks/baselines/*.json`` and fails (exit 1) when

* a ``profile_sha256`` digest differs — the analysis *output* changed,
  which no performance work is ever allowed to do; or
* a ratio metric regressed by more than ``--tolerance`` (default 25%) —
  e.g. the flat kernel's speedup over classic dropped, the symptom of a
  slowdown in the hot loop that a ratio measures free of machine speed;
* a latency metric *grew* by more than ``--tolerance`` — the inverted
  direction: for ``latency_ms`` entries (the slap swarm's p99 upload
  latency, ``repro slap --json``) bigger is worse.  Like throughput,
  latency baselines are only meaningful against the machine that
  recorded them — commit one where CI hardware is stable, or gate
  locally;
* with ``--absolute``: an absolute throughput metric regressed likewise
  (off by default — absolute events/s are not comparable across
  machines, so CI gates on ratios, latencies and hashes only).

Typical uses::

    python -m tools.bench_gate --run            # CI: bench + compare
    python -m tools.bench_gate                  # compare existing results
    python -m tools.bench_gate --run --rebaseline   # accept new numbers

``--rebaseline`` copies the fresh envelopes into the baselines
directory; commit the diff with a justification of the change (see
docs/KERNEL.md).  Benches run at ``--scale`` (default 0.5) so the gate
stays fast; baselines must be recorded at the same scale — the gate
refuses to compare envelopes whose gate scales differ.

Every comparison also emits a machine-readable summary
(``repro-gate-summary/1`` JSON, ``--summary`` to relocate/disable):
pass/fail, per-baseline status, and every violation — the artifact CI
archives and downstream tooling parses instead of scraping the log.

With ``--observatory DIR`` the gate run feeds the profile observatory:
fresh envelopes are auto-ingested into the history store (idempotent by
run id), and ``--fail-on-drift`` additionally fails the gate when the
store's drift detector reports a growth-class regression — the gate
then guards cost *functions* across the whole run history, not just
this run's throughput ratios (see docs/OBSERVATORY.md).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:        # repro.observatory for --observatory runs
    sys.path.insert(0, _SRC)

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: the bench files whose envelopes carry a ``gate`` section
GATED_BENCHES = (
    os.path.join("benchmarks", "bench_kernel_throughput.py"),
    os.path.join("benchmarks", "bench_farm_speedup.py"),
    os.path.join("benchmarks", "bench_streaming_latency.py"),
)

BASELINES_DIR = os.path.join(_ROOT, "benchmarks", "baselines")

#: REPRO_BENCH_SCALE the gate runs at — big enough that per-round
#: kernel times sit above timer/scheduler noise, small enough that the
#: gate stays a seconds-scale CI job
GATE_SCALE = 1.0

#: schema tag of the machine-readable gate summary artifact
SUMMARY_SCHEMA = "repro-gate-summary/1"

#: default summary artifact location (independent of scratch results
#: directories, so --run does not delete it with the scratch dir)
SUMMARY_PATH = os.path.join(_ROOT, "benchmarks", "results",
                            "bench_gate_summary.json")


class GateFailure(Exception):
    """One comparison violated the gate."""


def load_envelope(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as stream:
        envelope = json.load(stream)
    if envelope.get("schema") != "repro-bench/1":
        raise GateFailure(f"{path}: not a repro-bench/1 envelope")
    return envelope


def gate_section(envelope: Dict, path: str) -> Dict:
    gate = (envelope.get("metrics") or {}).get("gate")
    if not isinstance(gate, dict):
        raise GateFailure(f"{path}: envelope has no gate section")
    return gate


def run_benches(results_dir: str, scale: float, out=sys.stdout) -> None:
    """Run the gated benches into ``results_dir`` at ``scale``."""
    env = dict(os.environ)
    env["REPRO_BENCH_RESULTS"] = results_dir
    env["REPRO_BENCH_SCALE"] = str(scale)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(_ROOT, "src"), env.get("PYTHONPATH")) if p)
    command = [sys.executable, "-m", "pytest", *GATED_BENCHES,
               "-q", "--benchmark-disable", "-p", "no:cacheprovider"]
    out.write(f"bench-gate: running {' '.join(GATED_BENCHES)} "
              f"at scale {scale}\n")
    completed = subprocess.run(command, cwd=_ROOT, env=env)
    if completed.returncode != 0:
        raise GateFailure(
            f"benchmark run failed (pytest exit {completed.returncode})")


def compare_envelopes(
    baseline: Dict, fresh: Dict, name: str, tolerance: float,
    absolute: bool = False,
) -> List[str]:
    """Return the list of violations of ``fresh`` against ``baseline``."""
    problems: List[str] = []
    base_gate = gate_section(baseline, f"baseline {name}")
    new_gate = gate_section(fresh, f"result {name}")

    if base_gate.get("scale") != new_gate.get("scale"):
        problems.append(
            f"{name}: gate scales differ (baseline {base_gate.get('scale')} "
            f"vs result {new_gate.get('scale')}) — rerun or --rebaseline "
            f"at a matching REPRO_BENCH_SCALE")
        return problems

    for key, digest in (base_gate.get("profile_sha256") or {}).items():
        fresh_digest = (new_gate.get("profile_sha256") or {}).get(key)
        if fresh_digest != digest:
            problems.append(
                f"{name}: profile hash mismatch for {key!r} — the analysis "
                f"output changed ({digest[:12]}… -> "
                f"{str(fresh_digest)[:12]}…)")

    sections = [("ratios", base_gate.get("ratios") or {})]
    if absolute:
        sections.append(("throughput", base_gate.get("throughput") or {}))
    for section, metrics in sections:
        for key, old in metrics.items():
            new = (new_gate.get(section) or {}).get(key)
            if new is None:
                problems.append(f"{name}: metric {section}.{key} missing "
                                f"from the fresh envelope")
                continue
            if not isinstance(old, (int, float)) or old <= 0:
                continue
            if new < old * (1.0 - tolerance):
                problems.append(
                    f"{name}: {section}.{key} regressed "
                    f"{(1 - new / old) * 100:.1f}% "
                    f"({old} -> {new}, tolerance {tolerance * 100:.0f}%)")

    # latency gates are inverted: growth past tolerance is the regression
    for key, old in (base_gate.get("latency_ms") or {}).items():
        new = (new_gate.get("latency_ms") or {}).get(key)
        if new is None:
            problems.append(f"{name}: metric latency_ms.{key} missing "
                            f"from the fresh envelope")
            continue
        if not isinstance(old, (int, float)) or old <= 0:
            continue
        if new > old * (1.0 + tolerance):
            problems.append(
                f"{name}: latency_ms.{key} grew "
                f"{(new / old - 1) * 100:.1f}% "
                f"({old} -> {new} ms, tolerance {tolerance * 100:.0f}%)")

    # SLO burns gate in two layers: relative growth like latency, plus a
    # hard rule — burn >= 1.0 means the budget is spent, full stop
    for key, new in (new_gate.get("slo") or {}).items():
        if isinstance(new, (int, float)) and new >= 1.0:
            problems.append(
                f"{name}: slo.{key} is {new:.2f} — the SLO budget is "
                f"burned (>= 1.0 always fails)")
    for key, old in (base_gate.get("slo") or {}).items():
        new = (new_gate.get("slo") or {}).get(key)
        if new is None:
            problems.append(f"{name}: metric slo.{key} missing "
                            f"from the fresh envelope")
            continue
        if not isinstance(old, (int, float)) or old <= 0:
            continue
        if new > old * (1.0 + tolerance):
            problems.append(
                f"{name}: slo.{key} burn grew "
                f"{(new / old - 1) * 100:.1f}% "
                f"({old} -> {new}, tolerance {tolerance * 100:.0f}%)")
    return problems


def _ingest_observatory(
    observatory: str, results_dir: str, fail_on_drift: bool, out,
) -> Dict:
    """Auto-ingest fresh envelopes; optionally detect growth-class drift.

    Returns the ``observatory`` section of the gate summary.  Drift
    regressions are reported (and gated with ``fail_on_drift``) from
    the whole history store — envelopes ingested here plus whatever
    profile runs `repro observe ingest` fed it before.
    """
    from repro.observatory import ObservatoryStore, detect_drift, ingest_path

    store = ObservatoryStore(observatory)
    ingested, skipped = [], []
    for name in sorted(os.listdir(results_dir)):
        path = os.path.join(results_dir, name)
        if not name.endswith(".json"):
            continue
        try:
            result = ingest_path(store, path)
        except (ValueError, OSError):
            continue    # not an envelope (e.g. the gate summary itself)
        (ingested if result.ingested else skipped).append(result.run_id)
    out.write(f"bench-gate: observatory {observatory}: "
              f"{len(ingested)} envelope(s) ingested, "
              f"{len(skipped)} already known, {len(store)} run(s) total\n")
    alerts = detect_drift(store)
    regressions = [alert for alert in alerts if alert.verdict == "regressed"]
    for alert in regressions:
        out.write(f"bench-gate: drift: {alert.routine} regressed "
                  f"{alert.old_growth} -> {alert.new_growth} over "
                  f"{alert.runs_observed} run(s)\n")
    return {
        "store": observatory,
        "ingested": ingested,
        "skipped": skipped,
        "alerts": [alert._asdict() for alert in alerts],
        "drift_gated": fail_on_drift,
        "drift_regressions": len(regressions),
    }


def _write_summary(path: str, summary: Dict, out) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2, sort_keys=True)
        stream.write("\n")
    out.write(f"bench-gate: wrote summary to {path}\n")


def run_gate(
    results_dir: str,
    baselines_dir: str = BASELINES_DIR,
    tolerance: float = 0.25,
    absolute: bool = False,
    rebaseline: bool = False,
    summary_path: Optional[str] = SUMMARY_PATH,
    observatory: Optional[str] = None,
    fail_on_drift: bool = False,
    out=sys.stdout,
) -> int:
    """Compare every baseline against its fresh envelope; 0 iff clean."""
    try:
        baseline_names = sorted(
            name for name in os.listdir(baselines_dir) if name.endswith(".json"))
    except OSError:
        baseline_names = []
    if rebaseline:
        os.makedirs(baselines_dir, exist_ok=True)
        rebaselined = 0
        for name in sorted(os.listdir(results_dir)):
            if not name.endswith(".json"):
                continue
            try:
                envelope = load_envelope(os.path.join(results_dir, name))
            except GateFailure:
                continue    # non-envelope JSON (e.g. a gate summary)
            # only envelopes that carry a gate section become baselines
            if not isinstance((envelope.get("metrics") or {}).get("gate"), dict):
                continue
            shutil.copyfile(os.path.join(results_dir, name),
                            os.path.join(baselines_dir, name))
            out.write(f"bench-gate: rebaselined {name}\n")
            rebaselined += 1
        if not rebaselined:
            out.write(f"bench-gate: nothing to rebaseline in {results_dir}\n")
            return 1
        return 0

    summary: Dict = {
        "schema": SUMMARY_SCHEMA,
        "tolerance": tolerance,
        "absolute": absolute,
        "results_dir": results_dir,
        "baselines_dir": baselines_dir,
        "compared": [],
        "problems": [],
        "ok": False,
    }
    problems: List[str] = []
    if not baseline_names:
        out.write(f"bench-gate: no baselines under {baselines_dir}; "
                  f"run with --rebaseline to create them\n")
        problems.append(f"no baselines under {baselines_dir}")
    for name in baseline_names:
        baseline = load_envelope(os.path.join(baselines_dir, name))
        fresh_path = os.path.join(results_dir, name)
        if not os.path.exists(fresh_path):
            problems.append(f"{name}: no fresh envelope in {results_dir} "
                            f"(did the bench run?)")
            summary["compared"].append({"name": name, "status": "missing"})
            continue
        fresh = load_envelope(fresh_path)
        found = compare_envelopes(baseline, fresh, name, tolerance, absolute)
        summary["compared"].append({
            "name": name,
            "status": "fail" if found else "ok",
            "baseline_run_id": baseline.get("run_id"),
            "fresh_run_id": fresh.get("run_id"),
            "violations": list(found),
        })
        if found:
            problems.extend(found)
        else:
            out.write(f"bench-gate: {name} OK\n")

    if observatory is not None:
        summary["observatory"] = _ingest_observatory(
            observatory, results_dir, fail_on_drift, out)
        if fail_on_drift and summary["observatory"]["drift_regressions"]:
            problems.append(
                f"growth-class drift: "
                f"{summary['observatory']['drift_regressions']} routine(s) "
                f"regressed across the observed run history")

    summary["problems"] = list(problems)
    summary["ok"] = not problems
    if summary_path:
        _write_summary(summary_path, summary, out)
    if problems:
        for problem in problems:
            out.write(f"bench-gate: FAIL: {problem}\n")
        out.write(f"bench-gate: {len(problems)} violation(s); to accept "
                  f"intentional changes run `python -m tools.bench_gate "
                  f"--run --rebaseline` and commit the baselines diff\n")
        return 1
    out.write("bench-gate: all baselines hold\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.bench_gate",
        description="benchmark-regression gate over repro-bench/1 envelopes",
    )
    parser.add_argument("--run", action="store_true",
                        help="run the gated benches first (into a scratch "
                             "results directory)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="copy fresh envelopes into the baselines "
                             "directory instead of comparing")
    parser.add_argument("--tolerance", type=float, default=0.25, metavar="T",
                        help="allowed fractional regression of gated "
                             "metrics (default 0.25)")
    parser.add_argument("--absolute", action="store_true",
                        help="also gate absolute throughput numbers "
                             "(same-machine comparisons only)")
    parser.add_argument("--scale", type=float, default=GATE_SCALE,
                        help=f"REPRO_BENCH_SCALE for --run "
                             f"(default {GATE_SCALE}; must match baselines)")
    parser.add_argument("--results", metavar="DIR", default=None,
                        help="envelope directory to compare "
                             "(default: scratch dir with --run, else "
                             "benchmarks/results/)")
    parser.add_argument("--baselines", metavar="DIR", default=BASELINES_DIR,
                        help="baseline directory (default benchmarks/baselines/)")
    parser.add_argument("--summary", metavar="FILE", default=SUMMARY_PATH,
                        help="machine-readable repro-gate-summary/1 artifact "
                             "(default benchmarks/results/"
                             "bench_gate_summary.json; 'none' to disable)")
    parser.add_argument("--observatory", metavar="DIR", default=None,
                        help="auto-ingest fresh envelopes into this profile-"
                             "observatory store (see docs/OBSERVATORY.md)")
    parser.add_argument("--fail-on-drift", action="store_true",
                        help="with --observatory: fail when the store's "
                             "drift detector reports a growth-class "
                             "regression")
    args = parser.parse_args(argv)
    if args.fail_on_drift and args.observatory is None:
        parser.error("--fail-on-drift requires --observatory DIR")
    summary_path = None if args.summary == "none" else args.summary

    scratch = None
    results_dir = args.results
    if results_dir is None:
        if args.run:
            scratch = tempfile.mkdtemp(prefix="repro-bench-gate-")
            results_dir = scratch
        else:
            results_dir = os.path.join(_ROOT, "benchmarks", "results")
    try:
        if args.run:
            run_benches(results_dir, args.scale)
        return run_gate(results_dir, args.baselines, args.tolerance,
                        args.absolute, args.rebaseline,
                        summary_path=summary_path,
                        observatory=args.observatory,
                        fail_on_drift=args.fail_on_drift)
    except GateFailure as failure:
        sys.stdout.write(f"bench-gate: FAIL: {failure}\n")
        return 1
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
