"""Validate a Prometheus text exposition payload (CI /metrics smoke).

Usage::

    python -m tools.check_metrics metrics.txt
    curl -s http://HOST:PORT/metrics | python -m tools.check_metrics -

Checks the invariants a scraper relies on, which is exactly what
``repro.telemetry.prometheus.render_prometheus`` promises to produce:

* every sample line parses as ``name{labels} value`` with a metric name
  in the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar and a float value;
* every sample is preceded by a ``# TYPE`` declaration for its family
  (``_bucket``/``_sum``/``_count`` samples belong to their histogram);
* counter families end in ``_total``;
* histogram ``_bucket`` series are cumulative (monotone in ``le``),
  end in an ``le="+Inf"`` bucket, and that bucket equals ``_count``.

Exit 0 when the payload is valid and non-trivial, 1 with a complaint
per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

__all__ = ["check_metrics_text", "main"]

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$")
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>.*)"$')


def _parse_value(text: str) -> Optional[float]:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        return None


def _parse_labels(text: Optional[str]) -> Optional[Dict[str, str]]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    for item in text.split(","):
        match = _LABEL.match(item.strip())
        if match is None:
            return None
        labels[match.group("key")] = match.group("value")
    return labels


def _family_of(name: str, types: Dict[str, str]) -> Optional[str]:
    """The declared family a sample belongs to, histogram suffixes included."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def check_metrics_text(text: str) -> List[str]:
    """Every violation in one exposition payload (empty = valid)."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float, int]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram", "summary",
                                                   "untyped"):
                problems.append(f"line {lineno}: malformed TYPE line: {line}")
                continue
            if not _NAME.match(parts[2]):
                problems.append(f"line {lineno}: bad metric name {parts[2]!r}")
                continue
            if parts[2] in types:
                problems.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue                    # HELP / comments: fine, unchecked
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line}")
            continue
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        if labels is None:
            problems.append(f"line {lineno}: unparseable labels: {line}")
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(f"line {lineno}: bad sample value: {line}")
            continue
        family = _family_of(name, types)
        if family is None:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE "
                            f"declaration")
            continue
        if types[family] == "counter" and not name.endswith("_total"):
            problems.append(f"line {lineno}: counter sample {name!r} lacks "
                            f"the _total suffix")
        samples.append((name, labels, value, lineno))

    # histogram invariants: per (family, non-le labels) series
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets: Dict[Tuple, List[Tuple[float, float, int]]] = {}
        counts: Dict[Tuple, float] = {}
        for name, labels, value, lineno in samples:
            base = tuple(sorted((key, val) for key, val in labels.items()
                                if key != "le"))
            if name == f"{family}_bucket":
                if "le" not in labels:
                    problems.append(f"line {lineno}: bucket without le label")
                    continue
                bound = _parse_value(labels["le"])
                if bound is None:
                    problems.append(f"line {lineno}: bad le value "
                                    f"{labels['le']!r}")
                    continue
                buckets.setdefault(base, []).append((bound, value, lineno))
            elif name == f"{family}_count":
                counts[base] = value
        for base, series in buckets.items():
            series.sort(key=lambda item: item[0])
            previous = None
            for bound, value, lineno in series:
                if previous is not None and value < previous:
                    problems.append(
                        f"line {lineno}: {family}_bucket not cumulative at "
                        f"le={bound}")
                previous = value
            if not series or series[-1][0] != float("inf"):
                problems.append(f"{family}: missing le=\"+Inf\" bucket")
            elif base in counts and series[-1][1] != counts[base]:
                problems.append(
                    f"{family}: +Inf bucket {series[-1][1]} != _count "
                    f"{counts[base]}")
    if not samples and not problems:
        problems.append("no samples found")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        sys.stderr.write("usage: python -m tools.check_metrics FILE|-\n")
        return 2
    if argv[0] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[0], "r", encoding="utf-8") as stream:
            text = stream.read()
    problems = check_metrics_text(text)
    for problem in problems:
        sys.stderr.write(f"check_metrics: {problem}\n")
    if problems:
        return 1
    families = len(re.findall(r"^# TYPE ", text, flags=re.MULTILINE))
    samples = sum(1 for line in text.splitlines()
                  if line.strip() and not line.startswith("#"))
    sys.stdout.write(f"check_metrics: ok ({families} familie(s), "
                     f"{samples} sample(s))\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
