"""Legacy setup shim: the offline environment lacks the ``wheel`` module,
so PEP 660 editable installs are unavailable; this enables
``pip install -e .`` via setuptools' develop mode."""

from setuptools import setup

setup()
